"""The backend differ's failure output must be actionable.

A bare "fingerprints differ" forces a debugger re-run; the report
format pins down the first divergent record — index, simulation cycle
and component id where the record carries them — plus a unified diff
of just that record pair, so an equivalence failure reads like a bug
report.  These tests exercise the formatting layer directly on
hand-built fingerprints; the end-to-end path (a seeded mutation
producing such a report from a real run) is covered by
``test_vector_mutations``.
"""

from repro.verify.backend_diff import _compare, diff_point


def _mismatches(reference, candidate):
    out = []
    _compare([reference, candidate], out)
    return out


def test_list_divergence_reports_record_cycle_and_component():
    # "messages" records carry the source component at index 0 and the
    # queueing cycle at index 3 (see _RECORD_FIELDS).
    reference = {
        "messages": [
            (7, 2, "ok", 100, 5),
            (3, 9, "ok", 140, 5),
            (8, 1, "ok", 215, 5),
        ]
    }
    candidate = {
        "messages": [
            (7, 2, "ok", 100, 5),
            (3, 9, "blocked-fast", 141, 5),
            (8, 1, "ok", 215, 5),
        ]
    }
    (report,) = _mismatches(reference, candidate)
    header, _, diff = report.partition("\n")
    assert "messages: first divergence at record 1 of 3/3" in header
    assert "cycle 140" in header
    assert "component 3" in header
    assert "--- reference" in diff
    assert "+++ candidate" in diff
    assert "-(3, 9, 'ok', 140, 5)" in diff
    assert "+(3, 9, 'blocked-fast', 141, 5)" in diff


def test_length_mismatch_reports_absent_record():
    reference = {"receiver_arrivals": [(50, 1), (61, 2)]}
    candidate = {"receiver_arrivals": [(50, 1)]}
    (report,) = _mismatches(reference, candidate)
    assert "first divergence at record 1 of 2/1" in report
    assert "cycle 61" in report
    assert "'<absent>'" in report


def test_scalar_divergence_gets_whole_value_diff():
    (report,) = _mismatches(
        {"receiver_deliveries": 458}, {"receiver_deliveries": 392}
    )
    assert report.startswith("receiver_deliveries:")
    assert "-458" in report
    assert "+392" in report


def test_prefix_tags_every_description():
    out = []
    _compare([{"cycle": 100}, {"cycle": 90}], out, prefix="resumed:")
    (report,) = out
    assert report.startswith("resumed:cycle:")


def test_equal_fingerprints_report_nothing():
    fingerprint = {"messages": [(1, 2, "ok", 10, 3)], "cycle": 2400}
    assert _mismatches(fingerprint, dict(fingerprint)) == []


def test_diff_report_object_shape():
    report = diff_point("scenario", 0, backend="vector")
    assert report.ok and report.kind == "scenario" and report.seed == 0
    assert report.mismatches == []
