"""The deterministic-resume proof harness itself.

The full acceptance matrix (every workload family crossed with every
capture/restore backend pair) runs in CI and via
``repro verify --resume-diff``; here a cross-backend trial per family
keeps the proof wired into the default test run, plus unit coverage of
the harness API (kind routing, spec derivation, failure filtering)."""

import pytest

from repro.verify.resume_diff import (
    DEFAULT_PAIRS,
    ResumeReport,
    resume_diff_specs,
    resume_failures,
    resume_point,
    resume_sweep,
    run_resume_trial,
)
from repro.verify.backend_diff import DEFAULT_KINDS


@pytest.mark.parametrize("kind", DEFAULT_KINDS)
def test_one_cross_backend_resume_per_family(kind):
    # The hardest direction per family: capture under one engine,
    # restore under the other.
    report = resume_point(
        kind, seed=5, backend="reference", restore_backend="events"
    )
    assert report.ok, report.mismatches
    assert report.kind == kind
    assert report.restore_backend == "events"


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError) as excinfo:
        resume_point("voltage", seed=0)
    assert "voltage" in str(excinfo.value)
    assert "scenario" in str(excinfo.value)


def test_default_restore_backend_is_the_capture_backend():
    report = resume_point("scenario", seed=3, backend="events")
    assert report.ok, report.mismatches
    assert report.backend == "events"
    assert report.restore_backend == "events"


def test_specs_cross_kinds_with_backend_pairs():
    specs = resume_diff_specs(n_trials=16, seed=3)
    combos = [
        (
            spec.params["kind"],
            spec.params["backend"],
            spec.params["restore_backend"],
        )
        for spec in specs
    ]
    # 16 trials tile the full 4x4 matrix: every family resumed under
    # every capture/restore pair, each exactly once.
    assert len(set(combos)) == 16
    assert {(b, rb) for _, b, rb in combos} == set(DEFAULT_PAIRS)
    assert combos[0] == ("scenario", "reference", "reference")
    assert combos[4] == ("scenario", "events", "events")
    # Seeds are pure functions of (root seed, index): extending a sweep
    # never changes an existing trial's cache identity.
    assert len({spec.seed for spec in specs}) == 16
    prints = [spec.fingerprint(code_version="x") for spec in specs]
    assert prints[:8] == [
        spec.fingerprint(code_version="x")
        for spec in resume_diff_specs(n_trials=8, seed=3)
    ]
    assert prints != [
        spec.fingerprint(code_version="x")
        for spec in resume_diff_specs(n_trials=16, seed=4)
    ]


def test_sweep_reports_and_failure_filter():
    reports = resume_sweep(n_trials=2, seed=1)
    assert len(reports) == 2
    assert resume_failures(reports) == []
    broken = ResumeReport(
        kind="traffic",
        seed=9,
        backend="reference",
        restore_backend="events",
        ok=False,
        mismatches=["resumed:cycle: 5 != 6"],
    )
    assert resume_failures(reports + [broken]) == [broken]


def test_run_resume_trial_matches_resume_point():
    assert run_resume_trial(
        seed=11, kind="scenario", backend="events", restore_backend="reference"
    ) == resume_point(
        "scenario", 11, backend="events", restore_backend="reference"
    )


@pytest.mark.slow
def test_acceptance_full_resume_matrix():
    """The ISSUE acceptance bar: byte-identical resume across all four
    workload families, on both backends and both cross-backend
    directions — the full 4x4 (kind, capture, restore) matrix."""
    reports = resume_sweep(n_trials=16, seed=0, workers=4)
    assert len(reports) == 16
    failures = resume_failures(reports)
    assert not failures, [
        (r.kind, r.seed, r.backend, r.restore_backend, r.mismatches[:2])
        for r in failures
    ]
