"""Differential testing: simulator vs. the Table 4 latency equations."""

import pytest

from repro.harness.parallel import TrialRunner
from repro.verify.differential import (
    compare,
    differential_specs,
    differential_sweep,
    model_one_way,
    model_slack,
    run_trial,
)
from repro.verify.scenario import Scenario, random_scenario

pytestmark = pytest.mark.stress


def test_fifty_random_configs_agree_with_model():
    """The acceptance bar: >= 50 random (r, d, vtd, dp, hw) draws, the
    simulator and the closed-form model agree at the stated slack."""
    reports, mismatches = differential_sweep(n_trials=50, root_seed=0)
    assert len(reports) == 50
    assert mismatches == [], mismatches[0]["detail"] if mismatches else ""


def test_serial_and_parallel_sweeps_are_identical():
    serial, _ = differential_sweep(n_trials=10, root_seed=7)
    parallel, _ = differential_sweep(
        n_trials=10, root_seed=7, runner=TrialRunner(workers=2)
    )
    assert serial == parallel


def test_specs_are_deterministic_in_root_seed():
    first = differential_specs(5, root_seed=3)
    second = differential_specs(5, root_seed=3)
    assert [s.seed for s in first] == [s.seed for s in second]
    different = differential_specs(5, root_seed=4)
    assert [s.seed for s in first] != [s.seed for s in different]


def test_slack_is_exact_not_a_bound():
    """The fixed slack (final hop + TURN slot) is the whole story: the
    measured delta equals it exactly on a known configuration."""
    scenario = Scenario(
        radix=4, dilation=1, n_stages=2, w=4, hw=1, dp=2, link_delay=3,
        seed=42, messages=[{"src": 1, "dest": 14, "payload": [5] * 8}],
    )
    report = compare(scenario)
    assert report["ok"], report["detail"]
    assert report["delta"] == report["slack"] == scenario.link_delay + 1
    assert report["sim"] == model_one_way(scenario) + model_slack(scenario)


def test_run_trial_matches_compare():
    report = run_trial(123)
    assert report == compare(random_scenario(123, n_messages=1))
    assert report["ok"], report["detail"]


def test_compare_rejects_multi_message_scenarios():
    scenario = random_scenario(5, n_messages=2)
    with pytest.raises(ValueError):
        compare(scenario)
