"""The backend equivalence proof harness itself.

The full acceptance sweep (50+ trials across all workload families,
serial == parallel) runs in CI and via ``repro verify --backend-diff``;
here a trial per family keeps the proof wired into the default test
run, plus unit coverage of the harness API (kind routing, spec
derivation, failure filtering, mismatch reporting).
"""

import pytest

from repro.verify.backend_diff import (
    DEFAULT_KINDS,
    DiffReport,
    backend_diff_specs,
    diff_failures,
    diff_point,
    diff_sweep,
    run_diff_trial,
)


@pytest.mark.parametrize("kind", DEFAULT_KINDS)
def test_one_trial_per_workload_family(kind):
    report = diff_point(kind, seed=7)
    assert report.ok, report.mismatches
    assert report.kind == kind
    assert report.seed == 7


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError) as excinfo:
        diff_point("voltage", seed=0)
    assert "voltage" in str(excinfo.value)
    assert "scenario" in str(excinfo.value)


def test_specs_cycle_kinds_and_derive_seeds():
    specs = backend_diff_specs(n_trials=6, seed=3)
    assert [spec.params["kind"] for spec in specs] == [
        "scenario", "traffic", "faults", "chaos", "scenario", "traffic",
    ]
    # Seeds are pure functions of (root seed, index): extending the
    # sweep never changes an existing trial's cache identity.
    assert len({spec.seed for spec in specs}) == 6
    prints = [spec.fingerprint(code_version="x") for spec in specs]
    assert prints[:4] == [
        spec.fingerprint(code_version="x")
        for spec in backend_diff_specs(n_trials=4, seed=3)
    ]
    assert prints != [
        spec.fingerprint(code_version="x")
        for spec in backend_diff_specs(n_trials=6, seed=4)
    ]


def test_sweep_reports_and_failure_filter():
    reports = diff_sweep(n_trials=4, seed=1)
    assert len(reports) == 4
    assert diff_failures(reports) == []
    broken = DiffReport(
        kind="traffic", seed=9, ok=False, mismatches=["cycle: 5 != 6"]
    )
    assert diff_failures(reports + [broken]) == [broken]


def test_run_diff_trial_matches_diff_point():
    assert run_diff_trial(seed=11, kind="scenario") == diff_point(
        "scenario", 11
    )


@pytest.mark.slow
def test_acceptance_sweep_52_trials():
    """The ISSUE acceptance bar: >= 50 random scenarios, all families
    (transient faults included), byte-identical across backends."""
    reports = diff_sweep(n_trials=52, seed=0, workers=4)
    assert len(reports) == 52
    failures = diff_failures(reports)
    assert not failures, [
        (r.kind, r.seed, r.mismatches[:2]) for r in failures
    ]
