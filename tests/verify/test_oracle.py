"""The conformance oracle is silent on healthy networks.

Every test here drives real traffic with the oracle attached and
asserts zero violations — the oracle's false-positive contract.  (Its
detection power is established separately by test_mutations.py.)
"""

import random

import pytest

from repro.endpoint.messages import DELIVERED, Message
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, router_to_router_channels
from repro.faults.model import DeadLink, DeadRouter
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.verify import Oracle, OracleViolationError, Violation, attach_oracle
from repro.verify.scenario import random_scenario


def test_single_message_run_is_clean():
    network = build_network(figure1_plan(), seed=3)
    oracle = attach_oracle(network)
    message = network.send(5, Message(dest=15, payload=[1, 2, 3, 4]))
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == DELIVERED
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()
    assert oracle.ok
    assert oracle.cycles_checked > 0


def test_concurrent_traffic_is_clean():
    network = build_network(figure1_plan(), seed=31)
    oracle = attach_oracle(network)
    msgs = [
        network.send(src, Message(dest=(src + 7) % 16, payload=[src]))
        for src in range(16)
    ]
    assert network.run_until_quiet(max_cycles=20000)
    assert all(m.outcome == DELIVERED for m in msgs)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()


def test_hotspot_contention_is_clean():
    """Blocking, DROPs and retries — the paths most likely to trip a
    naive checker — produce no violations on a correct router."""
    network = build_network(figure1_plan(), seed=3, fast_reclaim=True)
    oracle = attach_oracle(network)
    msgs = [
        network.send(src, Message(dest=15, payload=[src % 16] * 6))
        for src in range(15)
    ]
    assert network.run_until_quiet(max_cycles=50000)
    assert all(m.outcome == DELIVERED for m in msgs)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()


@pytest.mark.stress
def test_chaos_with_transient_faults_is_clean():
    """Dying and healing links/routers must not register as protocol
    violations on the surviving, healthy routers."""
    network = build_network(figure1_plan(), seed=103, fast_reclaim=True)
    oracle = attach_oracle(network)
    injector = FaultInjector(network)
    rng = random.Random(99)
    channels = router_to_router_channels(network)
    for strike in range(4):
        src_key, dst_key = channels[rng.randrange(len(channels))]
        fault = DeadLink(src_key=src_key, dst_key=dst_key)
        start = 500 + strike * 700
        injector.at(start, fault)
        injector.revert_at(start + 400, fault)
    router_fault = DeadRouter(1, 0, 1)
    injector.at(1500, router_fault)
    injector.revert_at(3000, router_fault)

    traffic = UniformRandomTraffic(16, 4, rate=0.03, message_words=8, seed=7)
    traffic.attach(network)
    network.run(4000)
    for endpoint in network.endpoints:
        endpoint.traffic_source = None
    assert network.run_until_quiet(max_cycles=100000)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_random_scenarios_are_clean(seed):
    result = random_scenario(seed, n_messages=3).run()
    assert result.clean, result.violations[:5]


def test_cascade_oracle_clean_on_lockstep_slices():
    from repro.network.cascaded import CascadedNetwork
    from repro.verify import attach_cascade_oracle

    cascaded = CascadedNetwork(figure1_plan(), c=2, seed=51)
    oracle = attach_cascade_oracle(cascaded)
    wide = cascaded.send_wide(3, 12, [0x5A, 0xC3, 0x0F])
    assert cascaded.run_until_quiet(max_cycles=5000)
    assert wide.outcome == DELIVERED
    assert cascaded.inuse_mismatches == 0
    oracle.assert_clean()
    assert oracle.ok


def test_cascade_oracle_flags_inuse_disagreement():
    """Tearing a circuit down in one slice only is the wired-AND
    IN-USE fault of Section 5.1; the cascade oracle must localize it."""
    from repro.network.cascaded import CascadedNetwork
    from repro.verify import attach_cascade_oracle

    cascaded = CascadedNetwork(figure1_plan(), c=2, seed=51)
    oracle = attach_cascade_oracle(cascaded)
    cascaded.send_wide(3, 12, [0x5A] * 8)
    # Step until some router in slice 0 holds a circuit...
    victim = None
    for _ in range(200):
        cascaded.step()
        for router in cascaded.slices[0].all_routers():
            owners = router.backward_owner_ports()
            for owner in owners:
                if owner is not None:
                    victim = (router, owner)
                    break
            if victim:
                break
        if victim:
            break
    assert victim is not None, "no circuit ever locked"
    router, owner = victim
    router.force_teardown(owner)  # ...and break it in that slice only
    cascaded.step()
    assert cascaded.inuse_mismatches > 0
    assert not oracle.ok
    rules = {v.rule for v in oracle.violations}
    assert "cascade-inuse-mismatch" in rules
    flagged = [v for v in oracle.violations
               if v.rule == "cascade-inuse-mismatch"]
    assert flagged[0].router == router.name


def test_masked_port_carrying_data_is_flagged():
    """Disabling a port out from under a live circuit (a mask without
    quiescing first) must trip the data-on-masked-port rule."""
    from repro.verify.oracle import RULE_MASKED_PORT

    network = build_network(figure1_plan(), seed=41)
    oracle = attach_oracle(network)
    network.send(2, Message(dest=13, payload=[7] * 200))
    victim = None
    for _ in range(200):
        network.run(1)
        for router in network.router_grid.values():
            for q, end in enumerate(router.backward_ends):
                if end is None:
                    continue
                if router._bwd_owner[q] is not None:
                    victim = (router, q)
                    break
            if victim:
                break
        if victim:
            break
    assert victim is not None, "no circuit ever locked"
    router, q = victim
    router.config.port_enabled[router.config.backward_port_id(q)] = False
    network.run(3)
    rules = {v.rule for v in oracle.violations}
    assert RULE_MASKED_PORT in rules


def test_quiesced_mask_is_clean():
    """The manager's quiesce-then-mask ordering leaves no data on the
    wire, so the same rule stays silent."""
    from repro.scan.netconfig import NetworkScanFabric

    network = build_network(figure1_plan(), seed=42)
    oracle = attach_oracle(network)
    fabric = NetworkScanFabric(network)
    src_key, dst_key = router_to_router_channels(network)[0]
    upstream = network.router_grid[src_key[1:4]]
    downstream = network.router_grid[dst_key[1:4]]
    upstream.quiesce_backward_port(src_key[4])
    downstream.force_teardown(dst_key[4])
    fabric.disable_port(src_key[1:4], upstream.config.backward_port_id(src_key[4]))
    fabric.disable_port(
        dst_key[1:4], downstream.config.forward_port_id(dst_key[4])
    )
    message = network.send(2, Message(dest=13, payload=[3, 1, 4]))
    assert network.run_until_quiet(max_cycles=20000)
    assert message.outcome == DELIVERED
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()


def test_violation_error_lists_offenders():
    oracle = Oracle([])
    oracle.violations.append(
        Violation(cycle=7, router="r0.0.1", port=2, rule="ownership",
                  detail="port free but owned")
    )
    assert not oracle.ok
    with pytest.raises(OracleViolationError) as err:
        oracle.assert_clean()
    text = str(err.value)
    assert "r0.0.1" in text
    assert "ownership" in text
    assert "@7" in text
