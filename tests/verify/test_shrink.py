"""The shrinker reduces failing scenarios to minimal reproductions."""

import pytest

from repro.core import mutation
from repro.verify.differential import mismatch_aware_run
from repro.verify.scenario import Scenario, random_scenario
from repro.verify.shrink import (
    Shrinker,
    _ddmin,
    failure_signature,
    shrink_scenario,
)


def test_passing_scenario_refuses_to_shrink():
    scenario = random_scenario(11, n_messages=1)
    with pytest.raises(ValueError):
        shrink_scenario(scenario)


def test_failure_signature_of_clean_run_is_empty():
    result = random_scenario(11, n_messages=1).run()
    assert failure_signature(result) == frozenset()


def test_shrinks_mutation_failure_to_one_small_message():
    """Under a seeded checksum bug every delivery fails the oracle, so
    the shrinker should reach the floor: one message, one payload word,
    a one-stage network — while preserving the failure signature."""
    scenario = random_scenario(21, n_messages=4, max_payload_words=10)
    with mutation.seeded(mutation.CORRUPT_STATUS_CHECKSUM):
        original = failure_signature(scenario.run(max_cycles=2000))
        assert "rule:status-checksum-mismatch" in original
        # A tight cycle budget keeps the dozens of candidate runs fast;
        # the checksum violations appear within the first delivery.
        shrunk = shrink_scenario(scenario, max_cycles=2000)
    assert shrunk.signature & original
    minimal = shrunk.minimal
    assert len(minimal.messages) == 1
    assert len(minimal.messages[0]["payload"]) == 1
    assert minimal.n_stages == 1
    assert minimal.radix == 2
    assert minimal.dilation == 1
    # The reduction is committed-reproduction quality: it round-trips
    # through JSON and still fails identically.
    replayed = Scenario.from_json(minimal.to_json())
    with mutation.seeded(mutation.CORRUPT_STATUS_CHECKSUM):
        assert failure_signature(replayed.run(max_cycles=2000)) & original


def test_shrinker_counts_its_test_runs():
    scenario = random_scenario(21, n_messages=3)
    with mutation.seeded(mutation.CORRUPT_STATUS_CHECKSUM):
        shrinker = Shrinker(max_cycles=2000)
        shrinker.shrink(scenario)
    assert shrinker.tests_run > 3


def test_mismatch_aware_run_tags_model_disagreement(monkeypatch):
    """When the latency model and simulator disagree, the differential
    run override turns that into a shrinkable failure tag."""
    from repro.verify import differential

    monkeypatch.setattr(differential, "model_slack", lambda scenario: -999)
    run = mismatch_aware_run()
    result = run(random_scenario(11, n_messages=1))
    assert "rule:differential-mismatch" in failure_signature(result)


def test_ddmin_finds_single_culprit():
    items = list(range(16))

    def test(subset):
        return 13 in subset

    assert _ddmin(items, test) == [13]


def test_ddmin_keeps_interacting_pair():
    items = list(range(12))

    def test(subset):
        return 3 in subset and 9 in subset

    assert sorted(_ddmin(items, test)) == [3, 9]
