"""Stress and invariant tests: no leaks, no wedges, no lost words.

These runs push sustained random traffic — with and without chaos
(dynamic faults appearing and healing) — and then check the global
invariants that make METRO's statelessness claim true in this
implementation:

* when everything quiets down, every backward port in every router is
  free and every connection FSM is idle;
* every message the sources accepted is accounted for (delivered or
  explicitly abandoned), never silently lost;
* the receiver-side delivery count is at least the number of delivered
  messages (retries may deliver duplicates, which the ack protocol
  charges to the source as normal retry behaviour).
"""

import random

import pytest

from repro.core.router import IDLE_STATE
from repro.endpoint.messages import DELIVERED
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, router_to_router_channels
from repro.faults.model import DeadLink, DeadRouter
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.verify import attach_oracle

pytestmark = pytest.mark.stress


def _assert_no_leaks(network):
    for router in network.all_routers():
        if router.dead:
            continue
        assert router.busy_backward_ports() == [], router.name
        assert router.is_quiescent(), router.name
    for endpoint in network.endpoints:
        assert endpoint.idle(), endpoint.name
    # Half-duplex discipline held everywhere (data never collided).
    for channel in network.channels.values():
        assert channel.half_duplex_violations == 0, channel.name


def test_sustained_traffic_no_leaks():
    network = build_network(figure1_plan(), seed=101, fast_reclaim=True)
    oracle = attach_oracle(network)
    traffic = UniformRandomTraffic(16, 4, rate=0.05, message_words=8, seed=5)
    traffic.attach(network)
    network.run(6000)
    for endpoint in network.endpoints:
        endpoint.traffic_source = None
    assert network.run_until_quiet(max_cycles=50000)
    _assert_no_leaks(network)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()
    log = network.log
    assert len(log.delivered()) > 200
    assert log.abandoned() == []
    # Receiver saw at least every delivered message.
    assert log.receiver_deliveries >= len(log.delivered())
    assert log.receiver_checksum_failures == 0


def test_chaos_traffic_with_transient_faults():
    """Links and routers die and heal mid-run; afterwards the healed
    network must drain completely with nothing leaked or lost."""
    network = build_network(figure1_plan(), seed=103, fast_reclaim=True)
    oracle = attach_oracle(network)
    injector = FaultInjector(network)
    rng = random.Random(99)
    channels = router_to_router_channels(network)
    for strike in range(6):
        src_key, dst_key = channels[rng.randrange(len(channels))]
        fault = DeadLink(src_key=src_key, dst_key=dst_key)
        start = 500 + strike * 700
        injector.at(start, fault)
        injector.revert_at(start + 400, fault)
    router_fault = DeadRouter(1, 0, 1)
    injector.at(1500, router_fault)
    injector.revert_at(3500, router_fault)

    traffic = UniformRandomTraffic(16, 4, rate=0.03, message_words=8, seed=7)
    traffic.attach(network)
    network.run(6000)
    for endpoint in network.endpoints:
        endpoint.traffic_source = None
    assert network.run_until_quiet(max_cycles=100000)
    _assert_no_leaks(network)
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()
    log = network.log
    assert log.abandoned() == []
    assert len(log.delivered()) > 100
    # Every message the sources created was resolved.
    assert all(m.outcome == DELIVERED for m in log.messages)


def test_statelessness_pausing_the_clock_loses_nothing():
    """Section 2: 'it is possible to stop network operation at any
    point in time without losing or duplicating messages.'  In the
    simulation, 'stopping the clock' is simply not stepping the
    engine; this test freezes mid-message and resumes much later."""
    network = build_network(figure1_plan(), seed=105)
    from repro.endpoint.messages import Message

    message = network.send(4, Message(dest=11, payload=list(range(12))))
    network.run(7)  # mid-stream: words in channels and router pipes
    in_flight = sum(ch.in_flight() for ch in network.channels.values())
    assert in_flight > 0
    # ... the machine is context-switched for an arbitrarily long wall-
    # clock time; no simulation state changes because no clock edges
    # occur.  Resume:
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == DELIVERED
    assert network.log.receiver_checksum_failures == 0
    assert network.log.receiver_deliveries == 1  # no duplication


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_determinism_same_seed_same_result(seed):
    """Two identically-seeded runs are cycle-for-cycle identical."""
    outcomes = []
    for _ in range(2):
        network = build_network(figure1_plan(), seed=seed)
        traffic = UniformRandomTraffic(16, 4, rate=0.04, message_words=6, seed=seed)
        traffic.attach(network)
        network.run(2500)
        log = network.log
        outcomes.append(
            (
                len(log.delivered()),
                sorted(m.latency for m in log.delivered()),
                dict(log.attempt_failures),
            )
        )
    assert outcomes[0] == outcomes[1]
