"""Configuration matrix: correctness across the knob cross-product.

Each cell builds a differently-configured network and checks a quick
all-deliver workload plus post-run cleanliness.  Broad but shallow —
the deep behaviour of each knob is tested in its own module; this file
guards against *interactions* between knobs.
"""

import pytest

from repro.core.crossbar import FIRST_FREE, RANDOM, ROUND_ROBIN
from repro.core.parameters import RouterParameters
from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec, figure1_plan


def _hw_plan(hw, w=4):
    params = RouterParameters(i=4, o=4, w=w, max_d=2, hw=hw)
    return NetworkPlan(
        16, 2, 2,
        [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
    )


MATRIX = [
    # (label, plan factory, build kwargs)
    ("baseline", figure1_plan, {}),
    ("fast-reclaim", figure1_plan, {"fast_reclaim": True}),
    ("butterfly-wiring", figure1_plan, {"randomize_wiring": False}),
    ("deep-links", figure1_plan, {"link_delay": 3}),
    ("first-free", figure1_plan, {"selection_policy": FIRST_FREE}),
    ("round-robin", figure1_plan, {"selection_policy": ROUND_ROBIN}),
    ("hw1-fast-deep", lambda: _hw_plan(1),
     {"fast_reclaim": True, "link_delay": 2}),
    ("hw2-butterfly", lambda: _hw_plan(2), {"randomize_wiring": False}),
    ("w8-roundrobin-deep", lambda: _hw_plan(0, w=8),
     {"selection_policy": ROUND_ROBIN, "link_delay": 2}),
    ("no-watchdog", figure1_plan, {"signal_timeout": None}),
    ("dual-outstanding", figure1_plan,
     {"endpoint_kwargs": {"max_outstanding": 2}}),
    ("tight-timeout", figure1_plan,
     {"endpoint_kwargs": {"reply_timeout": 120, "backoff": (0, 0)}}),
]


@pytest.mark.parametrize(
    "label,plan_factory,kwargs", MATRIX, ids=[row[0] for row in MATRIX]
)
def test_configuration_cell(label, plan_factory, kwargs):
    network = build_network(plan_factory(), seed=hash(label) & 0xFFFF, **kwargs)
    messages = []
    for src in range(0, 16, 3):
        for dest in (5, 11):
            messages.append(
                network.send(src, Message(dest=dest, payload=[src, dest]))
            )
    assert network.run_until_quiet(max_cycles=120000), label
    for message in messages:
        assert message.outcome == DELIVERED, (label, message)
    for router in network.all_routers():
        assert router.busy_backward_ports() == [], (label, router.name)
    for channel in network.channels.values():
        assert channel.half_duplex_violations == 0, (label, channel.name)
    assert network.log.receiver_checksum_failures == 0, label
