"""Message bookkeeping and the delivery log."""

import pytest

from repro.endpoint import messages as M


class TestMessage:
    def test_latency_none_until_done(self):
        message = M.Message(dest=3, payload=[1])
        assert message.latency is None
        assert message.total_latency is None
        message.queued_cycle = 10
        message.start_cycle = 12
        message.done_cycle = 50
        assert message.latency == 38
        assert message.total_latency == 40

    def test_payload_copied(self):
        payload = [1, 2]
        message = M.Message(dest=0, payload=payload)
        payload.append(3)
        assert message.payload == [1, 2]

    def test_repr_mentions_route(self):
        message = M.Message(dest=7, payload=[])
        message.source = 2
        message.outcome = M.DELIVERED
        assert "2->7" in repr(message)


class TestMessageLog:
    def _delivered(self, latency, attempts=1, source=0):
        message = M.Message(dest=1, payload=[1])
        message.source = source
        message.queued_cycle = 0
        message.start_cycle = 0
        message.done_cycle = latency
        message.attempts = attempts
        message.outcome = M.DELIVERED
        return message

    def test_empty_log_statistics(self):
        log = M.MessageLog()
        assert log.mean_latency() is None
        assert log.mean_attempts() is None
        assert log.latencies() == []
        assert len(log) == 0

    def test_mean_latency(self):
        log = M.MessageLog()
        for latency in (10, 20, 30):
            log.record(self._delivered(latency))
        assert log.mean_latency() == 20
        assert log.total_latencies() == [10, 20, 30]

    def test_abandoned_separated(self):
        log = M.MessageLog()
        log.record(self._delivered(10))
        bad = M.Message(dest=2, payload=[])
        bad.outcome = M.ABANDONED
        log.record(bad)
        assert len(log.delivered()) == 1
        assert len(log.abandoned()) == 1

    def test_failure_cause_counts(self):
        log = M.MessageLog()
        message = self._delivered(10, attempts=3)
        message.failure_causes = [M.BLOCKED, M.BLOCKED, M.TIMEOUT]
        log.record(message)
        counts = log.failure_cause_counts()
        assert counts == {M.BLOCKED: 2, M.TIMEOUT: 1}

    def test_attempt_failures_live_counter(self):
        log = M.MessageLog()
        log.record_attempt_failure(M.NACKED)
        log.record_attempt_failure(M.NACKED)
        log.record_attempt_failure(M.DIED)
        assert log.attempt_failures == {M.NACKED: 2, M.DIED: 1}

    def test_mean_attempts(self):
        log = M.MessageLog()
        log.record(self._delivered(10, attempts=1))
        log.record(self._delivered(10, attempts=3))
        assert log.mean_attempts() == 2.0
