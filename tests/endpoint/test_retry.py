"""Retry policies: backoff shapes, budgets, and endpoint integration."""

import random

import pytest

from repro.endpoint.retry import (
    BudgetedRetries,
    ExponentialBackoff,
    RetryPolicy,
    UniformBackoff,
)


class _Message:
    def __init__(self, dest=0, attempts=1):
        self.dest = dest
        self.attempts = attempts


class TestUniformBackoff:
    def test_matches_randint_draw_exactly(self):
        """The default policy reproduces the historical rng.randint(lo, hi)
        draw stream — golden traces depend on it."""
        policy = UniformBackoff(0, 3)
        a, b = random.Random(42), random.Random(42)
        for attempt in range(50):
            assert policy.delay(a, _Message(attempts=attempt)) == b.randint(0, 3)

    def test_bounds(self):
        policy = UniformBackoff(2, 5)
        rng = random.Random(7)
        draws = {policy.delay(rng, _Message()) for _ in range(200)}
        assert draws == {2, 3, 4, 5}


class TestExponentialBackoff:
    def test_ceiling_doubles_per_attempt(self):
        policy = ExponentialBackoff(base=1, factor=2.0, max_delay=64, jitter=False)
        rng = random.Random(0)
        delays = [
            policy.delay(rng, _Message(attempts=n)) for n in range(1, 9)
        ]
        assert delays == [1, 2, 4, 8, 16, 32, 64, 64]

    def test_jitter_stays_within_ceiling(self):
        policy = ExponentialBackoff(base=1, factor=2.0, max_delay=32, jitter=True)
        rng = random.Random(3)
        for attempt in range(1, 20):
            delay = policy.delay(rng, _Message(attempts=attempt))
            ceiling = min(32, int(2.0 ** (attempt - 1)))
            assert 0 <= delay <= ceiling


class TestBudgetedRetries:
    def test_per_destination_budget_exhausts(self):
        policy = BudgetedRetries(budget=3)
        rng = random.Random(1)
        hot, cold = _Message(dest=5), _Message(dest=9)
        for _ in range(3):
            assert policy.delay(rng, hot) is not None
        assert policy.delay(rng, hot) is None  # dest 5 budget spent
        assert policy.delay(rng, cold) is not None  # dest 9 untouched

    def test_delegates_to_inner_policy(self):
        inner = ExponentialBackoff(base=2, factor=2.0, jitter=False)
        policy = BudgetedRetries(budget=10, inner=inner)
        rng = random.Random(0)
        assert policy.delay(rng, _Message(attempts=1)) == 2
        assert policy.delay(rng, _Message(attempts=2)) == 4

    def test_clones_do_not_share_spent_counters(self):
        policy = BudgetedRetries(budget=1)
        clone = policy.clone()
        rng = random.Random(0)
        policy.delay(rng, _Message(dest=2))
        assert policy.delay(rng, _Message(dest=2)) is None
        # The clone's budget for dest 2 is untouched.
        assert clone.delay(rng, _Message(dest=2)) is not None


class TestEndpointIntegration:
    def _network(self, **endpoint_kwargs):
        from repro.network.builder import build_network
        from repro.network.topology import figure1_plan

        return build_network(
            figure1_plan(), seed=17, endpoint_kwargs=endpoint_kwargs
        )

    def test_each_endpoint_gets_its_own_policy_clone(self):
        network = self._network(retry_policy=BudgetedRetries(budget=4))
        policies = {id(e.retry_policy) for e in network.endpoints}
        assert len(policies) == len(network.endpoints)
        assert all(
            isinstance(e.retry_policy, BudgetedRetries)
            for e in network.endpoints
        )

    def test_default_policy_is_uniform_backoff(self):
        network = self._network()
        assert all(
            isinstance(e.retry_policy, UniformBackoff)
            for e in network.endpoints
        )

    def test_budget_exhaustion_surfaces_as_abandoned(self):
        """With an unreachable destination and a tiny budget, sends end
        ABANDONED (structural loss) instead of retrying forever."""
        from repro.endpoint import messages as M
        from repro.faults.injector import FaultInjector
        from repro.faults.model import DeadRouter

        network = self._network(retry_policy=BudgetedRetries(budget=2))
        injector = FaultInjector(network)
        # Kill the whole final stage: nothing is deliverable.
        last = network.plan.n_stages - 1
        for (stage, block, index) in list(network.router_grid):
            if stage == last:
                injector.at(0, DeadRouter(stage, block, index))
        endpoint = network.endpoints[0]
        endpoint.submit(M.Message(dest=1, payload=[1, 2, 3]))
        network.run(4000)
        outcomes = [m.outcome for m in network.log.messages]
        assert outcomes == [M.ABANDONED]
        assert network.log.messages[0].attempts == 3  # initial + 2 retries

    def test_describe_is_informative(self):
        assert "uniform" in UniformBackoff().describe()
        assert "exp" in ExponentialBackoff().describe()
        assert "budget" in BudgetedRetries().describe()

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RetryPolicy().delay(random.Random(0), _Message())
