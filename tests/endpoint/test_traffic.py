"""Workload generators."""

import pytest

from repro.endpoint.traffic import (
    HotspotTraffic,
    PermutationTraffic,
    TraceTraffic,
    UniformRandomTraffic,
    bit_reverse,
    random_payload,
)


def _drain(source, cycles):
    messages = []
    for cycle in range(cycles):
        message = source(cycle)
        if message is not None:
            messages.append(message)
    return messages


class TestUniformRandom:
    def test_rate_controls_volume(self):
        low = UniformRandomTraffic(16, 4, rate=0.01, seed=1)
        high = UniformRandomTraffic(16, 4, rate=0.3, seed=1)
        n_low = len(_drain(low.source_for(0), 5000))
        n_high = len(_drain(high.source_for(0), 5000))
        assert n_low < n_high
        assert 20 < n_low < 90  # ~50 expected
        assert 1300 < n_high < 1700  # ~1500 expected

    def test_destinations_cover_network(self):
        traffic = UniformRandomTraffic(16, 4, rate=0.5, seed=2)
        messages = _drain(traffic.source_for(3), 2000)
        dests = {m.dest for m in messages}
        assert dests == set(range(16)) - {3}

    def test_self_excluded_by_default(self):
        traffic = UniformRandomTraffic(8, 4, rate=1.0, seed=3)
        messages = _drain(traffic.source_for(5), 200)
        assert all(m.dest != 5 for m in messages)

    def test_self_allowed_when_requested(self):
        traffic = UniformRandomTraffic(8, 4, rate=1.0, seed=3, exclude_self=False)
        messages = _drain(traffic.source_for(5), 500)
        assert any(m.dest == 5 for m in messages)

    def test_payload_shape(self):
        traffic = UniformRandomTraffic(8, 4, rate=1.0, message_words=20, seed=4)
        message = traffic.source_for(0)(0)
        assert len(message.payload) == 20
        assert all(0 <= v < 16 for v in message.payload)

    def test_counts_generated(self):
        traffic = UniformRandomTraffic(8, 4, rate=1.0, seed=5)
        _drain(traffic.source_for(0), 10)
        _drain(traffic.source_for(1), 10)
        assert traffic.generated == 20

    def test_reproducible_per_seed(self):
        a = UniformRandomTraffic(16, 8, rate=0.2, seed=9)
        b = UniformRandomTraffic(16, 8, rate=0.2, seed=9)
        dests_a = [m.dest for m in _drain(a.source_for(2), 500)]
        dests_b = [m.dest for m in _drain(b.source_for(2), 500)]
        assert dests_a == dests_b


class TestHotspot:
    def test_hotspot_receives_disproportionate_traffic(self):
        traffic = HotspotTraffic(16, 4, rate=1.0, hotspot=0, fraction=0.5, seed=6)
        messages = _drain(traffic.source_for(7), 1000)
        hot = sum(1 for m in messages if m.dest == 0)
        assert hot / len(messages) > 0.4  # ~0.53 expected

    def test_fraction_one_sends_only_to_the_hotspot(self):
        traffic = HotspotTraffic(16, 4, rate=1.0, hotspot=3, fraction=1.0, seed=8)
        messages = _drain(traffic.source_for(9), 300)
        assert messages
        assert all(m.dest == 3 for m in messages)

    def test_fraction_zero_degenerates_to_uniform(self):
        traffic = HotspotTraffic(16, 4, rate=1.0, hotspot=0, fraction=0.0, seed=8)
        messages = _drain(traffic.source_for(9), 2000)
        hot = sum(1 for m in messages if m.dest == 0)
        # No concentration: the hotspot gets its uniform 1/16 share.
        assert hot / len(messages) < 0.15

    def test_hotspot_endpoint_never_sends_to_itself(self):
        traffic = HotspotTraffic(16, 4, rate=1.0, hotspot=5, fraction=1.0, seed=8)
        assert _drain(traffic.source_for(5), 300) == []


class TestPermutation:
    def test_bit_reverse_helper(self):
        assert bit_reverse(0b0001, 4) == 0b1000
        assert bit_reverse(0b1011, 4) == 0b1101
        assert bit_reverse(0, 4) == 0

    def test_bit_reverse_mapping_is_permutation(self):
        traffic = PermutationTraffic(16, 4, permutation="bit-reverse")
        assert sorted(traffic.mapping) == list(range(16))

    def test_shift_mapping(self):
        traffic = PermutationTraffic(16, 4, permutation="shift")
        assert traffic.mapping[0] == 8
        assert traffic.mapping[9] == 1

    def test_fixed_partner(self):
        traffic = PermutationTraffic(16, 4, rate=1.0, permutation="shift", seed=7)
        messages = _drain(traffic.source_for(2), 100)
        assert all(m.dest == 10 for m in messages)

    def test_explicit_permutation_validated(self):
        with pytest.raises(ValueError):
            PermutationTraffic(4, 4, permutation=[0, 0, 1, 2])

    def test_fixed_point_generates_nothing(self):
        traffic = PermutationTraffic(4, 4, rate=1.0, permutation=[0, 2, 1, 3])
        assert _drain(traffic.source_for(0), 50) == []
        assert _drain(traffic.source_for(3), 50) == []

    def test_bit_reverse_fixed_points_are_self_send_excluded(self):
        # bit_reverse leaves palindromic indices (0, 6, 9, 15 for 16
        # endpoints) mapped to themselves; those endpoints must stay
        # silent rather than self-send.
        traffic = PermutationTraffic(16, 4, rate=1.0, permutation="bit-reverse")
        for endpoint in range(16):
            messages = _drain(traffic.source_for(endpoint), 20)
            if traffic.mapping[endpoint] == endpoint:
                assert messages == []
            else:
                assert messages
                assert all(m.dest != endpoint for m in messages)


class TestTrace:
    def test_events_fire_at_their_cycles(self):
        traffic = TraceTraffic(8, 4, events=[(5, 1, 3), (10, 1, 4), (2, 0, 7)])
        source1 = traffic.source_for(1)
        assert source1(0) is None
        assert source1(4) is None
        first = source1(5)
        assert first.dest == 3
        assert source1(6) is None
        second = source1(12)  # late poll still drains the queue
        assert second.dest == 4

    def test_other_endpoints_unaffected(self):
        traffic = TraceTraffic(8, 4, events=[(0, 2, 6)])
        assert _drain(traffic.source_for(3), 10) == []

    def test_events_sorted_regardless_of_input_order(self):
        traffic = TraceTraffic(8, 4, events=[(30, 1, 5), (4, 1, 2), (11, 1, 7)])
        assert traffic.events == [(4, 1, 2), (11, 1, 7), (30, 1, 5)]
        source = traffic.source_for(1)
        dests = [m.dest for m in _drain(source, 40)]
        assert dests == [2, 7, 5]  # queue drains in cycle order

    def test_same_cycle_events_keep_tuple_order(self):
        traffic = TraceTraffic(8, 4, events=[(5, 1, 6), (5, 1, 2)])
        source = traffic.source_for(1)
        first = source(5)
        second = source(5)  # one event per poll; same-cycle ties queue
        assert (first.dest, second.dest) == (2, 6)

    def test_next_arrival_cycle_tracks_the_queue(self):
        traffic = TraceTraffic(8, 4, events=[(4, 1, 2), (11, 1, 7)])
        source = traffic.source_for(1)
        assert source.next_arrival_cycle() == 4
        assert source(4) is not None
        assert source.next_arrival_cycle() == 11
        assert source(11) is not None
        assert source.next_arrival_cycle() is None  # exhausted


@pytest.mark.parametrize("w", [1, 4, 8, 12, 16, 20, 24])
def test_random_payload_respects_width(w):
    import random

    values = random_payload(random.Random(0), 400, w)
    assert len(values) == 400
    assert all(0 <= v < (1 << w) for v in values)
    # Regression: payload words were once drawn as 16-bit values and
    # masked, silently truncating wide datapaths and never exercising
    # the high bits.  400 draws make a value above half-range (and, for
    # w > 16, above the old 16-bit ceiling) a statistical certainty.
    assert max(values) >= (1 << (w - 1))
    if w > 16:
        assert max(values) > 0xFFFF


class TestAdversarial:
    def test_tornado_mapping(self):
        from repro.endpoint.traffic import AdversarialTraffic, tornado

        assert tornado(0, 16) == 7
        assert tornado(10, 16) == 1
        traffic = AdversarialTraffic(16, 4, pattern="tornado")
        assert sorted(traffic.mapping) == list(range(16))

    def test_complement_mapping(self):
        from repro.endpoint.traffic import AdversarialTraffic, bit_complement

        assert bit_complement(0b0101, 4) == 0b1010
        traffic = AdversarialTraffic(16, 4, pattern="complement")
        assert traffic.mapping[0] == 15
        assert sorted(traffic.mapping) == list(range(16))

    def test_neighbor_mapping(self):
        from repro.endpoint.traffic import AdversarialTraffic

        traffic = AdversarialTraffic(8, 4, pattern="neighbor")
        assert traffic.mapping == [1, 2, 3, 4, 5, 6, 7, 0]

    def test_unknown_pattern_rejected(self):
        from repro.endpoint.traffic import AdversarialTraffic

        with pytest.raises(ValueError):
            AdversarialTraffic(8, 4, pattern="bogus")

    def test_generates_to_fixed_partner(self):
        from repro.endpoint.traffic import AdversarialTraffic

        traffic = AdversarialTraffic(16, 4, rate=1.0, pattern="tornado", seed=3)
        messages = _drain(traffic.source_for(4), 50)
        assert messages
        assert all(m.dest == traffic.mapping[4] for m in messages)
