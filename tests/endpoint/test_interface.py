"""Endpoint (network interface) behaviour in isolation.

Uses a minimal one-router network (4 endpoints, radix-4 dilation-1)
so every send crosses exactly one METRO router — small enough to
reason about every cycle, real enough to exercise the full protocol.
"""

import pytest

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import (
    ABANDONED,
    BLOCKED,
    DELIVERED,
    Message,
    NACKED,
    TIMEOUT,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import CorruptLink, DeadLink
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec


def tiny_network(seed=0, **kwargs):
    params = RouterParameters(i=4, o=4, w=4, max_d=2)
    plan = NetworkPlan(4, 1, 1, [StageSpec(params, 1)])
    return build_network(plan, seed=seed, **kwargs)


class TestBasicSend:
    def test_single_hop_delivery(self):
        network = tiny_network()
        message = network.send(0, Message(dest=2, payload=[1, 2, 3]))
        assert network.run_until_quiet(max_cycles=2000)
        assert message.outcome == DELIVERED
        assert message.attempts == 1

    def test_message_bookkeeping(self):
        network = tiny_network()
        message = network.send(1, Message(dest=3, payload=[5]))
        network.run_until_quiet(max_cycles=2000)
        assert message.source == 1
        assert message.queued_cycle is not None
        assert message.start_cycle >= message.queued_cycle
        assert message.done_cycle > message.start_cycle
        assert message.latency == message.done_cycle - message.start_cycle
        assert message.total_latency >= message.latency

    def test_queue_drains_in_order(self):
        network = tiny_network()
        first = network.send(0, Message(dest=1, payload=[1]))
        second = network.send(0, Message(dest=2, payload=[2]))
        assert network.run_until_quiet(max_cycles=5000)
        assert first.outcome == second.outcome == DELIVERED
        assert first.done_cycle < second.done_cycle  # FIFO per endpoint

    def test_reply_payload_default_empty(self):
        network = tiny_network()
        message = network.send(0, Message(dest=1, payload=[7]))
        network.run_until_quiet(max_cycles=2000)
        assert message.reply_payload == []


class TestReplyHandler:
    def test_custom_reply_with_delay(self):
        network = tiny_network()
        network.endpoints[2].reply_handler = lambda payload, ok: ([0xA, 0xB], 10)
        fast = network.send(0, Message(dest=1, payload=[1]))
        network.run_until_quiet(max_cycles=2000)
        slow = network.send(0, Message(dest=2, payload=[1]))
        network.run_until_quiet(max_cycles=2000)
        assert slow.reply_payload[:-1] == [0xA, 0xB]
        # The 10-cycle handler delay (DATA-IDLE on the wire) shows up.
        assert slow.latency > fast.latency + 5

    def test_reply_checksum_appended(self):
        from repro.core.words import checksum_of

        network = tiny_network()
        network.endpoints[3].reply_handler = lambda payload, ok: ([1, 2, 3], 0)
        message = network.send(0, Message(dest=3, payload=[9]))
        network.run_until_quiet(max_cycles=2000)
        assert message.reply_payload == [1, 2, 3, checksum_of([1, 2, 3])]


class TestRetry:
    def test_timeout_then_retry_on_dead_network(self):
        network = tiny_network(
            endpoint_kwargs={"reply_timeout": 50, "max_attempts": 3}
        )
        src_key = next(k for k in network.channels if k[0][0] == "endpoint" and k[0][3] == 0)
        FaultInjector(network).now(DeadLink(src_key=src_key[0], dst_key=src_key[1]))
        message = network.send(0, Message(dest=2, payload=[1]))
        assert network.run_until_quiet(max_cycles=20000)
        assert message.outcome == ABANDONED
        assert message.attempts == 3
        assert message.failure_causes == [TIMEOUT] * 3

    def test_nack_then_abandon(self):
        network = tiny_network(
            endpoint_kwargs={"max_attempts": 2}
        )
        # Corrupt the only wire out of endpoint 0 (payload damaged).
        key = next(k for k in network.channels if k[0][0] == "endpoint" and k[0][3] == 0)
        FaultInjector(network).now(
            CorruptLink(src_key=key[0], dst_key=key[1], probability=1.0, mask=0x3)
        )
        message = network.send(0, Message(dest=2, payload=[1, 2]))
        assert network.run_until_quiet(max_cycles=20000)
        assert message.outcome == ABANDONED
        assert NACKED in message.failure_causes

    def test_unlimited_attempts_by_default(self):
        network = tiny_network()
        assert network.endpoints[0].max_attempts is None

    def test_backoff_delays_retry(self):
        network = tiny_network(
            endpoint_kwargs={
                "reply_timeout": 40,
                "max_attempts": 2,
                "backoff": (20, 20),
            }
        )
        key = next(k for k in network.channels if k[0][0] == "endpoint" and k[0][3] == 1)
        FaultInjector(network).now(DeadLink(src_key=key[0], dst_key=key[1]))
        message = network.send(1, Message(dest=3, payload=[1]))
        assert network.run_until_quiet(max_cycles=20000)
        # Two attempts, each ~ (stream + 40 timeout), plus one 20-cycle
        # backoff between them.
        assert message.outcome == ABANDONED
        duration = message.done_cycle - message.start_cycle
        assert duration >= 2 * 40 + 20


class TestBlockedRetry:
    def test_contention_on_single_output(self):
        """Dilation-1 router: two senders to one destination collide;
        the loser's retry succeeds after the winner closes."""
        network = tiny_network()
        a = network.send(0, Message(dest=3, payload=[1] * 10))
        b = network.send(1, Message(dest=3, payload=[2] * 10))
        assert network.run_until_quiet(max_cycles=20000)
        assert a.outcome == DELIVERED and b.outcome == DELIVERED
        blocked_total = (a.failure_causes + b.failure_causes).count(BLOCKED)
        assert blocked_total >= 1
        stages = a.blocked_stages + b.blocked_stages
        assert all(stage == 1 for stage in stages)  # one-stage network


class TestOutstandingLimits:
    def test_single_outstanding_default(self):
        network = tiny_network()
        endpoint = network.endpoints[0]
        assert endpoint.max_outstanding == 1
        network.send(0, Message(dest=1, payload=[1]))
        network.send(0, Message(dest=2, payload=[2]))
        network.run(3)
        # Only one in flight despite two queued.
        assert len(endpoint._sends) == 1

    def test_dual_port_concurrent_sends(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2)
        plan = NetworkPlan(
            16, 2, 2,
            [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
        )
        network = build_network(
            plan, seed=3, endpoint_kwargs={"max_outstanding": 2}
        )
        endpoint = network.endpoints[0]
        network.send(0, Message(dest=5, payload=[1] * 20))
        network.send(0, Message(dest=9, payload=[2] * 20))
        network.run(6)
        assert len(endpoint._sends) == 2  # both ports streaming at once
        assert network.run_until_quiet(max_cycles=20000)
        assert len(network.log.delivered()) == 2


class TestIdleAndStats:
    def test_idle_reflects_queue_and_flight(self):
        network = tiny_network()
        endpoint = network.endpoints[0]
        assert endpoint.idle()
        network.send(0, Message(dest=1, payload=[1]))
        assert not endpoint.idle()
        network.run_until_quiet(max_cycles=2000)
        assert endpoint.idle()

    def test_log_aggregates(self):
        network = tiny_network()
        for dest in (1, 2, 3):
            network.send(0, Message(dest=dest, payload=[dest]))
        network.run_until_quiet(max_cycles=10000)
        log = network.log
        assert len(log) == 3
        assert len(log.delivered()) == 3
        assert log.mean_latency() > 0
        assert log.mean_attempts() >= 1.0
        assert log.receiver_deliveries == 3
