"""Interface drain order: oldest-first, and no starvation at fan-in.

``Endpoint._maybe_start_send`` picks the *oldest* ready message by
submission time (``queued_cycle``), queue position breaking ties — not
plain queue position.  Position alone starves retried messages: a
retry re-enters the queue at the tail, behind requests submitted after
it, so under a multi-outstanding backlog a repeatedly unlucky message
could be lapped by fresh submissions indefinitely.  These tests pin
the documented order at the unit level and the no-starvation
consequence under a hotspot service load.
"""

from repro.endpoint.messages import Message
from repro.harness.load_sweep import figure1_network
from repro.harness.workload_sweep import run_service_point


def _message(dest, queued_cycle, tag):
    message = Message(dest=dest, payload=[tag])
    message.queued_cycle = queued_cycle
    return message


def _endpoint():
    network = figure1_network(seed=0)
    return network.endpoints[1]


def test_oldest_submission_drains_first():
    endpoint = _endpoint()
    fresh = _message(2, queued_cycle=50, tag=1)
    retried = _message(3, queued_cycle=5, tag=2)
    # The retry sits at the *tail* (re-appended after the backoff),
    # behind a younger message — exactly the lapping scenario.
    endpoint._queue.append((100, fresh))
    endpoint._queue.append((100, retried))
    endpoint._maybe_start_send(100)
    started = [send.message for send in endpoint._sends.values()]
    assert started == [retried]
    assert [entry[1] for entry in endpoint._queue] == [fresh]


def test_equal_age_falls_back_to_queue_position():
    endpoint = _endpoint()
    first = _message(2, queued_cycle=10, tag=1)
    second = _message(3, queued_cycle=10, tag=2)
    endpoint._queue.append((100, first))
    endpoint._queue.append((100, second))
    endpoint._maybe_start_send(100)
    started = [send.message for send in endpoint._sends.values()]
    assert started == [first]


def test_backoff_not_yet_expired_is_skipped():
    endpoint = _endpoint()
    oldest_but_waiting = _message(2, queued_cycle=1, tag=1)
    ready = _message(3, queued_cycle=90, tag=2)
    endpoint._queue.append((200, oldest_but_waiting))  # backoff pending
    endpoint._queue.append((100, ready))
    endpoint._maybe_start_send(100)
    started = [send.message for send in endpoint._sends.values()]
    assert started == [ready]
    assert [entry[1] for entry in endpoint._queue] == [oldest_but_waiting]


def test_nothing_ready_starts_nothing():
    endpoint = _endpoint()
    endpoint._queue.append((200, _message(2, queued_cycle=1, tag=1)))
    endpoint._maybe_start_send(100)
    assert not endpoint._sends
    assert len(endpoint._queue) == 1


def test_hotspot_service_load_starves_no_client():
    """Regression: high fan-in to one server must not starve clients.

    Every client endpoint multiplexes four clients toward the single
    server endpoint; retries under that contention re-queue constantly.
    Oldest-first drain keeps every client progressing — and every
    request eventually resolves (delivered or abandoned), none pinned
    in a queue forever.
    """
    result = run_service_point(0.002, seed=2, measure_cycles=6000)
    assert result.delivered_count > 0
    assert result.starved_clients() == []
    # No client hogs the interface: the busiest client completed at
    # most a small multiple of the median.
    counts = sorted(result.per_client_counts.values())
    median = counts[len(counts) // 2]
    assert counts[-1] <= 6 * max(1, median)
