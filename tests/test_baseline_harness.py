"""Wormhole harness: measured-window statistics."""

from repro.baseline.harness import (
    closed_loop_traffic,
    run_wormhole_point,
)
from repro.network.topology import figure1_plan


def test_closed_loop_traffic_shape():
    source_for = closed_loop_traffic(16, 4, rate=1.0, message_words=5, seed=1)
    source = source_for(3)
    dest, payload = source(0)
    assert 0 <= dest < 16 and dest != 3
    assert len(payload) == 5
    assert all(0 <= value < 16 for value in payload)


def test_closed_loop_traffic_rate_zero_generates_nothing():
    source_for = closed_loop_traffic(16, 4, rate=0.0, message_words=5, seed=2)
    source = source_for(0)
    assert all(source(cycle) is None for cycle in range(100))


def test_run_point_statistics():
    result = run_wormhole_point(
        figure1_plan(),
        rate=0.03,
        seed=3,
        message_words=8,
        warmup_cycles=200,
        measure_cycles=1200,
    )
    assert result.delivered_count > 10
    assert result.mean_latency > 0
    assert result.latency_percentile(95) >= result.median_latency
    assert 0 < result.delivered_load < 1
    data = result.as_dict()
    assert set(data) >= {"delivered", "mean_latency", "delivered_load"}


def test_latency_rises_with_load():
    light = run_wormhole_point(
        figure1_plan(), rate=0.005, seed=4, message_words=8,
        warmup_cycles=200, measure_cycles=1500,
    )
    heavy = run_wormhole_point(
        figure1_plan(), rate=0.4, seed=4, message_words=8,
        warmup_cycles=200, measure_cycles=1500,
    )
    assert heavy.delivered_load > light.delivered_load
    assert heavy.mean_latency > light.mean_latency
