"""Seeded workload bugs must be caught by the workload harness.

The DAG-release observer is the one place a silent bug would corrupt
every collective result at once, so it carries two seeded mutations
(:data:`~repro.core.mutation.WL_DROP_DEP_EDGE`,
:data:`~repro.core.mutation.WL_PREMATURE_RELEASE`) and this module
proves the harness detects both:

* a dropped dependency edge deadlocks the downstream subgraph — the
  run reports ``incomplete`` (and the SLO gate fails it);
* a premature release reorders transfers ahead of their dependencies —
  the trajectory digest diverges from the clean run and the
  per-message dependency audit finds a violation.

The clean control run, executed in the same process, pins that the
hooks are inert when not seeded.
"""

from repro.core import mutation
from repro.harness.load_sweep import figure1_network
from repro.harness.workload_sweep import run_collective_point, workload_slo_failures
from repro.workloads.collective import (
    CollectiveSchedule,
    CollectiveWorkload,
    run_collective,
)


def _clean():
    return run_collective_point(seed=6, algorithm="ring", words=8)


def test_dropped_dependency_edge_deadlocks_and_gates():
    clean = _clean()
    assert not clean.incomplete

    with mutation.seeded(mutation.WL_DROP_DEP_EDGE):
        broken = run_collective_point(seed=6, algorithm="ring", words=8)

    # The first successor of the first delivery never hears about it:
    # its dependency count stays pinned, the downstream chain deadlocks.
    assert broken.incomplete
    assert broken.completed_ops < clean.completed_ops
    failures = workload_slo_failures([broken], {})
    assert failures and "incomplete" in failures[0]

    # The hook is inert outside the seeded scope.
    again = _clean()
    assert not again.incomplete
    assert again.log_digest == clean.log_digest


def test_premature_release_diverges_the_trajectory():
    # Premature release only bites multi-dependency ops (for a
    # single-dependency op the first delivery IS the last), so the
    # probe schedule is recursive doubling: two deps per op past step 0.
    clean = run_collective_point(seed=6, algorithm="recursive-doubling",
                                 words=8)
    assert not clean.incomplete

    with mutation.seeded(mutation.WL_PREMATURE_RELEASE):
        broken = run_collective_point(seed=6, algorithm="recursive-doubling",
                                      words=8)

    # The byte-exact trajectory check catches the reordering...
    assert broken.log_digest != clean.log_digest

    # ...and it is a real ordering violation, not just a different
    # hash: some op was released before a dependency was delivered.
    network = figure1_network(seed=6)
    schedule = CollectiveSchedule.recursive_doubling_all_reduce(
        16, words_per_rank=8
    )
    workload = CollectiveWorkload(schedule, w=network.codec.w, seed=7)
    with mutation.seeded(mutation.WL_PREMATURE_RELEASE):
        run_collective(network, workload)
    state = workload.state
    violations = [
        (op.op_id, dep)
        for op in schedule.ops
        for dep in op.deps
        if state.released_cycle[op.op_id] is not None
        and (
            state.done_cycle[dep] is None
            or state.released_cycle[op.op_id] < state.done_cycle[dep]
        )
    ]
    assert violations

    # The clean run obeys every edge — the audit itself is sound.
    network = figure1_network(seed=6)
    workload = CollectiveWorkload(
        CollectiveSchedule.recursive_doubling_all_reduce(16, words_per_rank=8),
        w=network.codec.w,
        seed=7,
    )
    run_collective(network, workload)
    state = workload.state
    assert not [
        (op.op_id, dep)
        for op in workload.schedule.ops
        for dep in op.deps
        if state.released_cycle[op.op_id] < state.done_cycle[dep]
    ]


def test_workload_mutations_are_registered():
    assert mutation.WL_DROP_DEP_EDGE in mutation.KNOWN_MUTATIONS
    assert mutation.WL_PREMATURE_RELEASE in mutation.KNOWN_MUTATIONS
