"""Workload determinism: backends, parallel workers, snapshot/restore.

The acceptance claims of the workload engine:

* a collective DAG run is byte-identical (same ``log_digest``, same
  completion cycle) on the reference, event-driven and vectorized
  backends — including the 64-endpoint Figure-3 ring all-reduce;
* sweeping it through the parallel :class:`TrialRunner` with
  ``workers=2`` reproduces the serial results exactly;
* an engine snapshot taken mid-workload restores (on any backend) and
  finishes to the uninterrupted run's exact trajectory.

Hypothesis drives randomized instances of the first two claims; the
curated figure-sized instances pin the acceptance numbers.
"""

import pickle

import pytest

from repro.harness.load_sweep import figure1_network
from repro.harness.parallel import TrialRunner
from repro.harness.workload_sweep import (
    collective_fault_sweep,
    run_collective_point,
    run_service_point,
    service_sweep,
)
from repro.sim.snapshot import restore_network, snapshot_network
from repro.workloads.collective import (
    CollectiveSchedule,
    CollectiveWorkload,
    finish_collective,
    run_collective,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

BACKENDS = ("reference", "events", "vector")
ALGORITHMS = ("ring", "recursive-doubling", "all-to-all", "pipeline")


def _fingerprint(result):
    return (result.log_digest, result.total_cycles, result.completed_ops)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    algorithm=st.sampled_from(ALGORITHMS),
)
def test_random_collectives_identical_across_backends(seed, algorithm):
    reference, events, vector = (
        run_collective_point(seed=seed, algorithm=algorithm, words=6,
                             backend=backend)
        for backend in BACKENDS
    )
    assert not reference.incomplete
    assert _fingerprint(events) == _fingerprint(reference)
    assert _fingerprint(vector) == _fingerprint(reference)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_collective_sweeps_identical_serial_vs_parallel(seed):
    kwargs = dict(
        fault_levels=((0, 0), (2, 0)), seed=seed, algorithm="ring", words=6
    )
    serial = collective_fault_sweep(workers=1, **kwargs)
    parallel = collective_fault_sweep(workers=2, **kwargs)
    assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]
    assert (
        [r.content_hash() for r in serial]
        == [r.content_hash() for r in parallel]
    )


def test_figure3_ring_all_reduce_identical_across_backends():
    """The acceptance instance: a 64-endpoint ring all-reduce."""
    reference, events, vector = (
        run_collective_point(seed=0, algorithm="ring", words=8,
                             network="figure3", backend=backend)
        for backend in BACKENDS
    )
    assert not reference.incomplete
    assert reference.n_endpoints == 64
    assert reference.completed_ops == 2 * 63 * 64
    assert all(row["done"] is not None for row in reference.steps)
    assert _fingerprint(events) == _fingerprint(reference)
    assert _fingerprint(vector) == _fingerprint(reference)


def test_service_point_identical_across_backends():
    reference, events, vector = (
        run_service_point(0.001, seed=1, backend=backend)
        for backend in BACKENDS
    )
    assert reference.delivered_count > 0
    for other in (events, vector):
        assert other.log_digest == reference.log_digest
        assert other.as_dict() == reference.as_dict()
        assert other.per_client_counts == reference.per_client_counts


def test_service_sweep_identical_serial_vs_parallel():
    kwargs = dict(rates=(0.0005, 0.001), seed=3, measure_cycles=3000)
    serial = service_sweep(workers=1, **kwargs)
    parallel = service_sweep(workers=2, **kwargs)
    assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]


def test_trial_runner_caches_collective_points(tmp_path):
    kwargs = dict(fault_levels=((0, 0),), seed=2, algorithm="ring", words=6)
    first = collective_fault_sweep(
        cache_dir=str(tmp_path), **kwargs
    )
    runner = TrialRunner(cache_dir=str(tmp_path))
    second = collective_fault_sweep(runner=runner, **kwargs)
    assert runner.stats.cached == 1
    assert [r.as_dict() for r in first] == [r.as_dict() for r in second]


# ---------------------------------------------------------------------------
# Snapshot/restore mid-workload
# ---------------------------------------------------------------------------


def _collective_setup(backend=None, seed=7):
    kwargs = {"backend": backend} if backend else {}
    network = figure1_network(seed=seed, **kwargs)
    schedule = CollectiveSchedule.ring_all_reduce(16, words_per_rank=8)
    workload = CollectiveWorkload(schedule, w=network.codec.w, seed=seed + 1)
    return network, workload


def test_snapshot_resumes_collective_to_identical_trajectory():
    network, workload = _collective_setup()
    straight = run_collective(network, workload)
    assert not straight.incomplete

    network, workload = _collective_setup()
    workload.attach(network)
    network.run(200)
    assert not workload.finished  # genuinely mid-DAG
    snap = pickle.loads(
        pickle.dumps(
            snapshot_network(network, extras={"workload": workload}),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    for backend in BACKENDS:
        restored = restore_network(snap, backend=backend)
        resumed_workload = restored.extras["workload"]
        # The restored observer and the restored workload share one
        # live DAG state — the identity the release protocol needs.
        observers = restored.network.engine.observers
        assert any(
            getattr(o, "state", None) is resumed_workload.state
            for o in observers
        ), backend
        resumed = finish_collective(restored.network, resumed_workload)
        assert _fingerprint(resumed) == _fingerprint(straight), backend


@pytest.mark.slow
def test_snapshot_collective_full_backend_matrix():
    network, workload = _collective_setup()
    straight = run_collective(network, workload)

    for capture_backend in BACKENDS:
        network, workload = _collective_setup(backend=capture_backend)
        workload.attach(network)
        network.run(200)
        snap = pickle.loads(
            pickle.dumps(
                snapshot_network(network, extras={"workload": workload}),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        for restore_backend in BACKENDS:
            restored = restore_network(snap, backend=restore_backend)
            resumed = finish_collective(
                restored.network, restored.extras["workload"]
            )
            assert _fingerprint(resumed) == _fingerprint(straight), (
                capture_backend,
                restore_backend,
            )


def test_snapshot_resumes_service_soak():
    def soak(interrupt):
        from repro.workloads.service import RequestResponseWorkload, run_service

        network = figure1_network(seed=5)
        workload = RequestResponseWorkload(
            n_endpoints=network.plan.n_endpoints,
            w=network.codec.w,
            rate=0.001,
            clients=2,
            service_time=(0, 8),
            seed=6,
        )
        if not interrupt:
            run_service(network, workload, warmup_cycles=400,
                        measure_cycles=2000)
            return network

        workload.attach(network)
        network.run(400)
        snap = pickle.loads(
            pickle.dumps(snapshot_network(network), protocol=pickle.HIGHEST_PROTOCOL)
        )
        restored = restore_network(snap, backend="events")
        net = restored.network
        net.run(2000)
        end = net.engine.cycle
        for endpoint in net.endpoints:
            if endpoint.traffic_source is not None:
                endpoint.traffic_source.stop(end)
        net.run_until_quiet(max_cycles=8000)
        return net

    from repro.workloads.collective import collective_log_digest

    straight = soak(interrupt=False)
    resumed = soak(interrupt=True)
    assert collective_log_digest(resumed.log) == collective_log_digest(
        straight.log
    )
