"""Request/response services: open-loop arrivals, tails, SLO gate."""

import math

import pytest

from repro.harness.load_sweep import figure1_network
from repro.harness.workload_sweep import run_service_point
from repro.workloads.service import (
    RequestResponseWorkload,
    ServiceResult,
    run_service,
    service_slo_failures,
)


class _FakeRequest:
    def __init__(self, latency, client_id=(1, 0)):
        self.total_latency = latency
        self.client_id = client_id


def _result(latencies, abandoned=0, label="unit"):
    return ServiceResult(
        label=label,
        requests=[_FakeRequest(v) for v in latencies],
        abandoned=abandoned,
        measure_cycles=1000,
        n_client_endpoints=1,
        clients=1,
        offered_rate=0.001,
        backlog=0,
        log_digest="-",
    )


# ---------------------------------------------------------------------------
# Percentiles and the SLO gate (pure data, no network)
# ---------------------------------------------------------------------------


def test_nearest_rank_percentiles():
    result = _result(list(range(1, 1001)))
    assert result.latency_percentile(50) == 501.0
    assert result.latency_percentile(99) == 991.0
    assert result.latency_percentile(99.9) == 1000.0
    assert result.as_dict()["p999_latency"] == 1000.0


def test_empty_result_has_nan_tails_and_fails_slo():
    result = _result([])
    assert math.isnan(result.latency_percentile(99))
    assert math.isnan(result.mean_latency)
    # NaN must fail the gate, not silently pass it.
    assert service_slo_failures(result, {"p99": 100.0})


def test_slo_gate_reports_each_violation():
    result = _result([10.0] * 99 + [5000.0])
    assert service_slo_failures(result, {"p50": 100.0, "p99": 6000.0}) == []
    failures = service_slo_failures(result, {"p99": 100.0})
    assert len(failures) == 1
    assert "p99" in failures[0] and "unit" in failures[0]


def test_slo_gate_abandoned_bound_is_opt_in():
    result = _result([10.0], abandoned=3)
    assert service_slo_failures(result, {"p50": 100.0}) == []
    failures = service_slo_failures(result, {"p50": 100.0, "abandoned": 0})
    assert len(failures) == 1 and "abandoned" in failures[0]


def test_slo_gate_rejects_unknown_keys():
    with pytest.raises(ValueError):
        service_slo_failures(_result([1.0]), {"p42": 1.0})


# ---------------------------------------------------------------------------
# Client sources (unit level)
# ---------------------------------------------------------------------------


def _source(rate=0.01, clients=2, burst_prob=0.0, burst_size=1, seed=7):
    workload = RequestResponseWorkload(
        n_endpoints=4, w=8, servers=(0,), clients=clients, rate=rate,
        burst_prob=burst_prob, burst_size=burst_size, seed=seed,
    )
    return workload.source_for(1)


def test_open_loop_arrivals_backdate_queued_cycle():
    source = _source()
    due = source.next_arrival_cycle()
    assert due >= 1
    # Poll long after the arrival: the latency clock still starts at
    # the arrival, not at the poll.
    message = source(due + 500)
    assert message is not None
    assert message.queued_cycle == due
    assert message.request_id == 0


def test_arrival_hint_is_always_concrete():
    source = _source()
    for cycle in range(0, 2000, 50):
        hint = source.next_arrival_cycle()
        assert hint is not None
        source(cycle)
        assert source.next_arrival_cycle() is not None


def test_bursts_share_the_trigger_arrival_cycle():
    source = _source(burst_prob=1.0, burst_size=3)
    first = source(10_000)
    assert first is not None
    extras = [source(10_000) for _ in range(2)]
    assert all(m is not None for m in extras)
    assert {m.queued_cycle for m in extras} == {first.queued_cycle}
    assert first.client_id == extras[0].client_id


def test_stop_drops_future_arrivals_but_keeps_the_backlog():
    source = _source(rate=0.05, clients=4)
    dues = sorted(source.next_arrival_cycle() for _ in range(1))
    horizon = dues[0]
    source.stop(horizon + 1)
    # The arrival that already happened is still emitted...
    message = source(horizon + 100)
    assert message is not None
    assert message.queued_cycle <= horizon
    # ...but no new arrival processes run after the stop.
    remaining = []
    while True:
        m = source(10**9)
        if m is None:
            break
        remaining.append(m)
        assert m.queued_cycle <= horizon
    assert source.next_arrival_cycle() == float("inf")


# ---------------------------------------------------------------------------
# Live soaks
# ---------------------------------------------------------------------------


def test_service_point_serves_every_client():
    result = run_service_point(0.002, seed=2)
    assert result.delivered_count > 0
    assert result.abandoned_count == 0
    assert result.starved_clients() == []
    stats = result.as_dict()
    assert stats["p50_latency"] <= stats["p95_latency"] <= stats["p99_latency"]
    assert stats["p99_latency"] <= stats["p999_latency"]
    assert result.throughput > 0
    # Client identity survives into the report.
    assert all(
        isinstance(key, tuple) and len(key) == 2
        for key in result.per_client_counts
    )


def test_drain_does_not_censor_the_tail():
    network = figure1_network(seed=9, endpoint_kwargs={"max_outstanding": 2})
    workload = RequestResponseWorkload(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.004,
        clients=4,
        service_time=(0, 16),
        seed=5,
    )
    run_service(network, workload, warmup_cycles=500, measure_cycles=3000)
    requests = [
        m for m in network.log.messages
        if getattr(m, "request_id", None) is not None
    ]
    assert requests
    # Every request that arrived was resolved — the drain phase kept
    # running until the open-loop backlog was empty, so no in-window
    # straggler is missing from the tail statistics.
    assert all(m.outcome is not None for m in requests)
    end = 500 + 3000
    assert max(m.done_cycle for m in requests) > end


def test_service_runs_under_idle_compression():
    network = figure1_network(seed=4, backend="events")
    workload = RequestResponseWorkload(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.0002,
        clients=1,
        seed=3,
    )
    result = run_service(
        network, workload, warmup_cycles=500, measure_cycles=4000
    )
    assert result.delivered_count > 0
    # Sparse arrivals leave real idle gaps; the precomputed arrival
    # hints let the event backend jump them instead of ticking through.
    assert network.engine.compressed_cycles > 0
