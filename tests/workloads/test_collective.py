"""Collective schedules: generators, DAG release, per-step reporting."""

import pickle

import pytest

from repro.harness.load_sweep import figure1_network
from repro.harness.workload_sweep import run_collective_point
from repro.workloads.collective import (
    CollectiveSchedule,
    CollectiveWorkload,
    ModelShape,
    run_collective,
)


def _op_index(network):
    """op_id -> message for every collective message in the log."""
    return {
        m.op_id: m
        for m in network.log.messages
        if getattr(m, "op_id", None) is not None
    }


# ---------------------------------------------------------------------------
# Schedule generators
# ---------------------------------------------------------------------------


def test_ring_all_reduce_shape():
    schedule = CollectiveSchedule.ring_all_reduce(8, words_per_rank=16)
    # 2(n-1) steps of n transfers each.
    assert len(schedule) == 2 * 7 * 8
    assert len(schedule.steps()) == 14
    # Chunked message size.
    assert all(op.words == 2 for op in schedule.ops)
    # Step-s ops depend on exactly the upstream neighbor's step-s-1 op.
    for op in schedule.ops:
        if op.step == 0:
            assert op.deps == ()
        else:
            (dep,) = op.deps
            parent = schedule.ops[dep]
            assert parent.step == op.step - 1
            assert parent.dest == op.src


def test_recursive_doubling_requires_power_of_two():
    with pytest.raises(ValueError):
        CollectiveSchedule.recursive_doubling_all_reduce(6)
    schedule = CollectiveSchedule.recursive_doubling_all_reduce(8)
    assert len(schedule.steps()) == 3
    assert len(schedule) == 3 * 8


def test_all_to_all_covers_every_pair():
    schedule = CollectiveSchedule.all_to_all(5, words_per_pair=4)
    pairs = {(op.src, op.dest) for op in schedule.ops}
    assert pairs == {
        (i, j) for i in range(5) for j in range(5) if i != j
    }


def test_pipeline_parallel_forward_then_backward():
    schedule = CollectiveSchedule.pipeline_parallel(
        4, n_microbatches=2, activation_words=6
    )
    # Per microbatch: n-1 forward hops + n-1 backward hops.
    assert len(schedule) == 2 * 2 * 3
    # The first backward hop of a microbatch depends on its last
    # forward hop.
    backward = [op for op in schedule.ops if op.src > op.dest]
    first_bwd = backward[0]
    assert any(
        schedule.ops[dep].dest == schedule.n_endpoints - 1
        for dep in first_bwd.deps
    )


def test_dag_rejects_forward_and_self_references():
    schedule = CollectiveSchedule(4)
    schedule.add_op(0, 1, 4)
    with pytest.raises(ValueError):
        schedule.add_op(1, 2, 4, deps=(5,))
    with pytest.raises(ValueError):
        schedule.add_op(2, 2, 4)


def test_model_shape_serializes_layers():
    schedule = ModelShape([32, 64], algorithm="ring").schedule(4)
    # Two layers' ring all-reduces, tagged (layer, step).
    layers = {op.step[0] for op in schedule.ops}
    assert layers == {0, 1}
    # Every first-step op of layer 1 waits on layer 0's last step.
    last_layer0 = [
        op.op_id
        for op in schedule.ops
        if op.step == (0, max(s for (l, s) in (o.step for o in schedule.ops) if l == 0))
    ]
    for op in schedule.ops:
        if op.step[0] == 1 and op.step[1] == 0:
            assert set(last_layer0) <= set(op.deps)


# ---------------------------------------------------------------------------
# Execution on a live network
# ---------------------------------------------------------------------------


def test_ring_all_reduce_completes_and_respects_dependencies():
    network = figure1_network(seed=11)
    schedule = CollectiveSchedule.ring_all_reduce(16, words_per_rank=12)
    workload = CollectiveWorkload(schedule, w=network.codec.w, seed=3)
    result = run_collective(network, workload)

    assert not result.incomplete
    assert result.completed_ops == len(schedule)
    assert result.total_cycles is not None

    # The DAG invariant the observer enforces: no op's message was
    # handed to the network before every dependency was *delivered*.
    by_op = _op_index(network)
    for op in schedule.ops:
        message = by_op[op.op_id]
        for dep in op.deps:
            assert by_op[dep].done_cycle is not None
            assert message.queued_cycle > by_op[dep].done_cycle - 1, (
                "op {} started at {} before dep {} delivered at {}".format(
                    op.op_id,
                    message.queued_cycle,
                    dep,
                    by_op[dep].done_cycle,
                )
            )


def test_per_step_report_is_monotone_and_complete():
    result = run_collective_point(seed=5, algorithm="ring", words=8)
    assert len(result.steps) == 2 * 15
    dones = [row["done"] for row in result.steps]
    assert all(done is not None for done in dones)
    assert dones == sorted(dones)
    assert all(row["skew"] >= 0 for row in result.steps)
    assert result.straggler_rank() in result.per_rank_done
    assert result.step_times() == dones


def test_collective_point_under_faults_still_completes():
    clean = run_collective_point(seed=5, algorithm="ring", words=8)
    degraded = run_collective_point(
        seed=5, algorithm="ring", words=8, n_dead_links=4
    )
    assert not degraded.incomplete
    # Retries around the dead links cost attempts (and usually time).
    assert degraded.mean_attempts >= clean.mean_attempts


def test_result_is_plain_picklable_data():
    result = run_collective_point(seed=1, algorithm="all-to-all", words=6)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.as_dict() == result.as_dict()
    assert isinstance(result.content_hash(), str)


def test_recursive_doubling_and_pipeline_complete():
    for algorithm in ("recursive-doubling", "pipeline"):
        result = run_collective_point(seed=4, algorithm=algorithm, words=6)
        assert not result.incomplete, algorithm
        assert result.failed_ops == 0, algorithm
