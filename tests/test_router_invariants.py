"""Property-based router/protocol invariants (satellite of the
parallel-harness PR).

Two invariants the METRO protocol promises, checked over randomized
scenarios rather than hand-picked ones:

1. **A TURNed path always reports back.**  Whenever a source's stream
   is TURNed, the return stream carries one STATUS word per routing
   stage with a running checksum of what that router forwarded, then
   the destination's acknowledgment.  Network-level corollary: a
   delivered message saw every stage's STATUS with a *correct*
   checksum (endpoints verify them when ``verify_stage_checksums`` is
   on), and the receiver's end-to-end checksum never fails silently.

2. **Blocking never leaks resources.**  However a trial ends — TURN
   reversal, DROP teardown, or a fast-reclamation BCB — once the
   network drains, no router still holds a backward (output) port
   allocation, every forward port is back to IDLE, and no channel
   still carries words.
"""

from hypothesis import given, settings, strategies as st

from repro.core.router import IDLE_STATE
from repro.endpoint import messages as M
from repro.endpoint.messages import Message
from repro.endpoint.traffic import UniformRandomTraffic
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _network(seed, **kwargs):
    return build_network(figure1_plan(), seed=seed, fast_reclaim=True, **kwargs)


def _assert_no_leaked_resources(network):
    for router in network.all_routers():
        if router.dead:
            continue
        assert router.busy_backward_ports() == [], router.name
        for port in range(router.params.i):
            assert router.connection_state(port) == IDLE_STATE, (
                router.name, port
            )
    for channel in network.channels.values():
        assert channel.in_flight() == 0, channel.name


# ---------------------------------------------------------------------------
# Invariant 1: TURN -> per-stage STATUS with correct checksums
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    src=st.integers(min_value=0, max_value=15),
    dest=st.integers(min_value=0, max_value=15),
    payload=st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=12
    ),
)
@settings(max_examples=20, deadline=None)
def test_turned_path_delivers_status_and_checksum(seed, src, dest, payload):
    network = _network(
        seed, endpoint_kwargs={"verify_stage_checksums": True}
    )
    message = network.send(src, Message(dest=dest, payload=payload))
    assert network.run_until_quiet(max_cycles=30000)

    # On a healthy network the source-responsible protocol always
    # converges to delivery: the TURNed reply carried a STATUS per
    # stage (checksum-verified by the endpoint) and an ACK.
    assert message.outcome == M.DELIVERED
    # Stage checksums were verified on the delivering attempt: had any
    # been missing or wrong, the attempt would have failed CORRUPTED.
    assert M.CORRUPTED not in message.failure_causes
    # The receiver's end-to-end payload checksum matched on delivery.
    arrivals_ok = [ok for _cycle, _n, ok in network.log.receiver_arrivals]
    assert arrivals_ok.count(True) >= 1
    _assert_no_leaked_resources(network)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_every_source_dest_pair_reports_status(seed):
    """One fixed pair per seed, but checksum expectations pinned exactly."""
    network = _network(
        seed, endpoint_kwargs={"verify_stage_checksums": True}
    )
    src = seed % 16
    dest = (seed // 16) % 16
    payload = [(seed >> shift) & 0xFF for shift in (0, 8, 16, 24)]
    message = network.send(src, Message(dest=dest, payload=payload))
    assert network.run_until_quiet(max_cycles=30000)
    assert message.outcome == M.DELIVERED
    # The endpoint compared the received STATUS checksums against
    # expected_stage_checksums — recompute to pin the count per stage.
    expected = network.endpoints[src].expected_stage_checksums(message)
    assert len(expected) == network.plan.n_stages


# ---------------------------------------------------------------------------
# Invariant 2: drop/BCB teardown leaves no port allocated
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rate=st.sampled_from([0.05, 0.15, 0.3]),
    cycles=st.sampled_from([120, 250]),
)
@settings(max_examples=12, deadline=None)
def test_no_output_port_left_allocated_after_drain(seed, rate, cycles):
    """Heavy random traffic forces blocks, DROPs and BCB reclamations;
    whatever happened, a drained network holds zero allocations."""
    network = _network(seed)
    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=6,
        seed=seed ^ 0xBEEF,
    )
    traffic.attach(network)
    network.run(cycles)
    for endpoint in network.endpoints:
        endpoint.traffic_source = None
    assert network.run_until_quiet(max_cycles=30000)
    _assert_no_leaked_resources(network)
    # Blocking did occur across the strategy space (sanity that the
    # property is exercised, not vacuous) — at this load some attempts
    # fail; they must all have been retried or accounted, never lost.
    delivered = len(network.log.delivered())
    abandoned = len(network.log.abandoned())
    in_flight = sum(ep.pending_count() for ep in network.endpoints)
    assert in_flight == 0
    assert delivered + abandoned <= traffic.generated
    assert delivered > 0


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_faulty_network_still_leaks_nothing(seed):
    """Dead wires cause mid-path DROPs/timeouts; teardown must still
    free every port on the surviving routers."""
    from repro.faults.injector import FaultInjector, random_fault_scenario

    network = _network(seed)
    injector = FaultInjector(network)
    for fault in random_fault_scenario(
        network, n_dead_links=2, seed=seed + 1, exclude_final_stage=True
    ):
        injector.now(fault)
    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.1,
        message_words=6,
        seed=seed ^ 0x5A5A,
    )
    traffic.attach(network)
    network.run(200)
    for endpoint in network.endpoints:
        endpoint.traffic_source = None
    assert network.run_until_quiet(max_cycles=30000)
    for router in network.all_routers():
        if router.dead:
            continue
        assert router.busy_backward_ports() == [], router.name
