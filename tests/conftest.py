"""Shared test configuration.

Hypothesis runs derandomized by default: every property test draws the
same examples on every run and machine, so a failure seen in CI
reproduces locally from the log alone (see docs/testing.md).  Export
``HYPOTHESIS_PROFILE=random`` to explore fresh examples instead.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # property tests are skipped without hypothesis
    pass
else:
    settings.register_profile("deterministic", derandomize=True)
    settings.register_profile("random", derandomize=False)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))
