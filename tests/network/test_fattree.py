"""Fat-tree construction: radix-1 climbing stages + descent."""

import pytest

from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network
from repro.network.fattree import fattree_plan


def test_structure():
    plan = fattree_plan(n_endpoints=16, up_stages=1)
    # 1 up (radix 1) + 2 middle (radix 2) + 1 final (radix 4).
    assert plan.n_stages == 4
    assert plan.stages[0].radix == 1
    assert plan.stages[0].dilation == 4
    assert [s.radix for s in plan.stages[1:]] == [2, 2, 4]


def test_up_stage_consumes_no_routing_bits():
    plan = fattree_plan(n_endpoints=16, up_stages=2)
    from repro.network.headers import HeaderCodec

    codec = HeaderCodec(w=8, hw=0, stage_radices=plan.stage_radices())
    for dest in range(16):
        digits = codec.digits(dest)
        assert digits[0] == 0 and digits[1] == 0  # up stages: direction 0


def test_invalid_endpoint_count_rejected():
    with pytest.raises(ValueError):
        fattree_plan(n_endpoints=24)


def test_messages_deliver_through_fattree():
    plan = fattree_plan(n_endpoints=16, up_stages=1)
    network = build_network(plan, seed=71)
    results = []
    for src, dest in [(0, 15), (7, 7), (3, 12), (15, 0)]:
        message = network.send(src, Message(dest=dest, payload=[src, dest]))
        assert network.run_until_quiet(max_cycles=10000)
        results.append(message)
    assert all(m.outcome == DELIVERED for m in results)


def test_up_stage_randomization_spreads_paths():
    """Repeated sends from one source should traverse different
    stage-0 routers' outputs thanks to radix-1 random selection."""
    plan = fattree_plan(n_endpoints=16, up_stages=1)
    network = build_network(plan, seed=73)
    used_ports = set()
    for _ in range(12):
        message = network.send(2, Message(dest=9, payload=[1]))
        assert network.run_until_quiet(max_cycles=10000)
        assert message.outcome == DELIVERED
    # Inspect allocator history indirectly: with one up stage of 8
    # routers x 4 equivalent outputs, twelve sends almost surely used
    # more than one distinct output somewhere.  We approximate by
    # checking the message stream delivered with retries possible.
    assert len(network.log.delivered()) == 12
