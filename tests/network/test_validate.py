"""The network linter."""

import pytest

from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.network.validate import validate_network


@pytest.fixture
def network():
    return build_network(figure1_plan(), seed=88)


def test_built_network_is_clean(network):
    assert validate_network(network) == []


def test_detects_wrong_dilation(network):
    network.router_grid[(0, 0, 0)].config.dilation = 1
    problems = validate_network(network)
    assert any("dilation" in p for p in problems)


def test_detects_wrong_swallow(network):
    router = network.router_grid[(1, 0, 0)]
    router.config.swallow[2] = not router.config.swallow[2]
    problems = validate_network(network)
    assert any("swallow" in p for p in problems)


def test_detects_wrong_turn_delay(network):
    router = network.router_grid[(0, 0, 3)]
    router.config.turn_delay[router.config.forward_port_id(0)] = 5
    problems = validate_network(network)
    assert any("turn delay" in p for p in problems)


def test_detects_detached_port(network):
    router = network.router_grid[(2, 0, 0)]
    router.forward_ends[1] = None
    problems = validate_network(network)
    assert any("unattached" in p for p in problems)


def test_single_disabled_port_keeps_reachability(network):
    router = network.router_grid[(0, 0, 0)]
    router.config.port_enabled[router.config.backward_port_id(0)] = False
    problems = validate_network(network)
    assert not any("no enabled route" in p for p in problems)


def test_overmasking_isolates_and_is_reported(network):
    """Disable both wires into endpoint 3: the linter must flag every
    source as cut off from it."""
    for (src_key, dst_key), _channel in network.channels.items():
        if dst_key[0] == "endpoint" and dst_key[3] == 3:
            _, stage, block, index, port = src_key
            router = network.router_grid[(stage, block, index)]
            router.config.port_enabled[
                router.config.backward_port_id(port)
            ] = False
    problems = validate_network(network)
    isolation = [p for p in problems if "to endpoint 3" in p]
    assert len(isolation) == 16


def test_multiple_problems_all_reported(network):
    network.router_grid[(0, 0, 0)].config.dilation = 1
    router = network.router_grid[(1, 1, 2)]
    router.config.swallow[0] = not router.config.swallow[0]
    problems = validate_network(network)
    assert len(problems) >= 2
