"""Network builder: everything wired, configured, and consistent."""

import pytest

from repro.core.crossbar import FIRST_FREE
from repro.network.builder import build_network
from repro.network.topology import figure1_plan, figure3_plan


@pytest.fixture(scope="module")
def network():
    return build_network(figure1_plan(), seed=77)


class TestWiring:
    def test_every_router_port_attached(self, network):
        for router in network.all_routers():
            assert all(end is not None for end in router.forward_ends)
            assert all(end is not None for end in router.backward_ends)

    def test_every_endpoint_port_attached(self, network):
        for endpoint in network.endpoints:
            assert len(endpoint.source_ends) == network.plan.endpoint_out_ports
            assert len(endpoint.receive_ends) == network.plan.endpoint_in_ports

    def test_channel_count(self, network):
        assert len(network.channels) == 4 * 32
        assert len(network.engine.channels) == 4 * 32

    def test_component_count(self, network):
        # 24 routers + 16 endpoints.
        assert len(network.engine.components) == 24 + 16

    def test_router_grid_complete(self, network):
        plan = network.plan
        expected = sum(plan.routers_in_stage(s) for s in range(plan.n_stages))
        assert len(network.router_grid) == expected


class TestConfiguration:
    def test_dilations_follow_plan(self, network):
        for (stage, _block, _index), router in network.router_grid.items():
            assert router.config.dilation == network.plan.stages[stage].dilation

    def test_swallow_flags_follow_codec(self, network):
        flags = network.codec.swallow_flags()
        for (stage, _block, _index), router in network.router_grid.items():
            expected = [flags[stage]] * router.params.i
            assert router.config.swallow == expected

    def test_turn_delay_registers_match_wires(self, network):
        """Table 2's per-port turn delay must equal each attached
        wire's pipeline depth (clamped to max_vtd)."""
        for (src_key, dst_key), channel in network.channels.items():
            if dst_key[0] == "router":
                _, stage, block, index, port = dst_key
                router = network.router_grid[(stage, block, index)]
                port_id = router.config.forward_port_id(port)
                assert router.config.turn_delay[port_id] == min(
                    channel.delay, router.params.max_vtd
                )

    def test_fast_reclaim_flag(self):
        network = build_network(figure1_plan(), seed=1, fast_reclaim=True)
        for router in network.all_routers():
            for port in range(router.params.i):
                assert router.config.fast_reclaim[
                    router.config.forward_port_id(port)
                ]

    def test_selection_policy_forwarded(self):
        network = build_network(figure1_plan(), seed=1, selection_policy=FIRST_FREE)
        for router in network.all_routers():
            assert router.allocator.policy == FIRST_FREE


class TestCodecSharing:
    def test_single_codec_shared(self, network):
        for endpoint in network.endpoints:
            assert endpoint.codec is network.codec

    def test_mixed_w_rejected(self):
        from repro.core.parameters import RouterParameters
        from repro.network.topology import NetworkPlan, StageSpec

        a = RouterParameters(i=4, o=4, w=4, max_d=2)
        b = RouterParameters(i=4, o=4, w=8, max_d=2)
        plan = NetworkPlan(
            16, 2, 2, [StageSpec(a, 2), StageSpec(a, 2), StageSpec(b, 1)]
        )
        with pytest.raises(ValueError):
            build_network(plan, seed=1)


class TestReproducibility:
    def test_same_seed_same_network(self):
        a = build_network(figure3_plan(), seed=9)
        b = build_network(figure3_plan(), seed=9)
        assert set(a.channels) == set(b.channels)

    def test_different_seed_different_wiring(self):
        a = build_network(figure3_plan(), seed=9)
        b = build_network(figure3_plan(), seed=10)
        assert set(a.channels) != set(b.channels)
