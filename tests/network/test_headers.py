"""Header encoding, hbits, swallow flags — the Table 4 hbits rule."""

import pytest

from repro.network.headers import HeaderCodec


class TestDigits:
    def test_uniform_radix(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[4, 4, 4])
        assert codec.digits(0) == [0, 0, 0]
        assert codec.digits(63) == [3, 3, 3]
        assert codec.digits(27) == [1, 2, 3]  # 27 = 1*16 + 2*4 + 3

    def test_mixed_radix(self):
        # The paper's 32-node example: three radix-2 stages then radix 4.
        codec = HeaderCodec(w=4, hw=0, stage_radices=[2, 2, 2, 4])
        assert codec.destinations == 32
        assert codec.digits(0) == [0, 0, 0, 0]
        assert codec.digits(31) == [1, 1, 1, 3]
        assert codec.digits(13) == [0, 1, 1, 1]  # 13 = 0*16 + 1*8 + 1*4 + 1

    def test_out_of_range(self):
        codec = HeaderCodec(w=4, hw=0, stage_radices=[4])
        with pytest.raises(ValueError):
            codec.digits(4)
        with pytest.raises(ValueError):
            codec.digits(-1)

    def test_digits_roundtrip_all_destinations(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[2, 4, 2])
        seen = set()
        for dest in range(codec.destinations):
            digits = codec.digits(dest)
            value = 0
            for digit, radix in zip(digits, codec.stage_radices):
                value = value * radix + digit
            assert value == dest
            seen.add(tuple(digits))
        assert len(seen) == codec.destinations


class TestHbits:
    def test_paper_32_node_hw0_w4(self):
        # Table 3 row METROJR-ORBIT: hbits must be 8 for t_20,32 = 1250ns.
        codec = HeaderCodec(w=4, hw=0, stage_radices=[2, 2, 2, 4])
        assert codec.hbits() == 8

    def test_paper_32_node_hw0_w8(self):
        # METROJR w=8 row: ceil(5/8)*8 = 8.
        codec = HeaderCodec(w=8, hw=0, stage_radices=[2, 2, 2, 4])
        assert codec.hbits() == 8

    def test_paper_2stage_radix_4_8(self):
        # METRO i=o=8 w=4 rows: two stages, radices 4 and 8 -> 5 bits -> 8.
        codec = HeaderCodec(w=4, hw=0, stage_radices=[4, 8])
        assert codec.hbits() == 8

    def test_hw1_rule(self):
        # Table 4: hw>0 -> hbits = hw*w*c*stages.
        codec = HeaderCodec(w=4, hw=1, stage_radices=[2, 2, 2, 4])
        assert codec.hbits() == 1 * 4 * 1 * 4

    def test_hw2_with_cascade(self):
        codec = HeaderCodec(w=4, hw=2, stage_radices=[4, 8], cascade_width=4)
        assert codec.hbits() == 2 * 4 * 4 * 2

    def test_cascade_multiplies_hw0_header(self):
        codec = HeaderCodec(w=4, hw=0, stage_radices=[2, 2, 2, 4], cascade_width=2)
        assert codec.hbits() == 16

    def test_header_length_matches_hbits_per_slice(self):
        for radices in ([4, 4, 4], [2, 2, 2, 4], [4, 8], [2] * 9):
            for w in (4, 8):
                codec = HeaderCodec(w=w, hw=0, stage_radices=radices)
                assert len(codec.encode(0)) * w == codec.hbits()


class TestEncodingHw0:
    def test_digits_pack_msb_first(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[4, 4, 4])
        # dest 27 -> digits 1,2,3 -> bits 01 10 11 padded: 01101100
        assert codec.encode(27) == [0b01101100]

    def test_multiword_header(self):
        codec = HeaderCodec(w=4, hw=0, stage_radices=[4, 4, 4])
        # 6 bits over w=4: word0 = 0110 (digits 1,2), word1 = 11 padded.
        assert codec.encode(27) == [0b0110, 0b1100]

    def test_straddle_pads_previous_word(self):
        # w=4, stage bits 3,3: second digit cannot straddle.
        codec = HeaderCodec(w=4, hw=0, stage_radices=[8, 8])
        words = codec.encode(0b101_110)  # digits 5, 6
        assert words == [0b1010, 0b1100]

    def test_radix_too_wide_rejected(self):
        with pytest.raises(ValueError):
            HeaderCodec(w=2, hw=0, stage_radices=[8])

    def test_non_power_of_two_radix_rejected(self):
        with pytest.raises(ValueError):
            HeaderCodec(w=4, hw=0, stage_radices=[3])


class TestEncodingHw1:
    def test_one_word_per_stage(self):
        codec = HeaderCodec(w=8, hw=1, stage_radices=[4, 4, 4])
        assert codec.encode(27) == [1, 2, 3]

    def test_padding_words(self):
        codec = HeaderCodec(w=8, hw=3, stage_radices=[4, 4])
        assert codec.encode(9) == [2, 0, 0, 1, 0, 0]


class TestSwallowFlags:
    def test_exact_fit_swallows_each_word(self):
        # w=4, 2 bits per stage: word exhausted every two stages.
        codec = HeaderCodec(w=4, hw=0, stage_radices=[4, 4, 4, 4])
        assert codec.swallow_flags() == [False, True, False, True]

    def test_final_stage_always_swallows(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[4, 4, 4])
        flags = codec.swallow_flags()
        assert flags[-1] is True
        assert flags == [False, False, True]

    def test_straddle_forces_early_swallow(self):
        codec = HeaderCodec(w=4, hw=0, stage_radices=[8, 8])
        assert codec.swallow_flags() == [True, True]

    def test_hw_nonzero_has_no_swallow(self):
        codec = HeaderCodec(w=4, hw=2, stage_radices=[4, 4])
        assert codec.swallow_flags() == [False, False]


class TestSimulateOracle:
    """simulate() is the ground truth the router tests compare against."""

    def test_directions_match_digits(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[4, 4, 4])
        for dest in range(64):
            directions = [step[0] for step in codec.simulate(dest)]
            assert directions == codec.digits(dest)

    def test_header_fully_consumed_at_exit(self):
        for radices in ([4, 4, 4], [2, 2, 2, 4], [4, 8], [8, 8]):
            for w in (4, 8):
                if max(radices) > (1 << w):
                    continue
                codec = HeaderCodec(w=w, hw=0, stage_radices=radices)
                for dest in range(codec.destinations):
                    final_remnant = codec.simulate(dest)[-1][1]
                    assert final_remnant == []

    def test_hw1_consumes_whole_words(self):
        codec = HeaderCodec(w=8, hw=1, stage_radices=[4, 4, 4])
        steps = codec.simulate(27)
        assert [s[0] for s in steps] == [1, 2, 3]
        assert steps[0][1] == [2, 3]
        assert steps[1][1] == [3]
        assert steps[2][1] == []

    def test_shifted_remnants_expose_next_stage_digits(self):
        codec = HeaderCodec(w=8, hw=0, stage_radices=[4, 4, 4])
        for dest in (0, 13, 42, 63):
            digits = codec.digits(dest)
            steps = codec.simulate(dest)
            # After stage 0 the head word's top 2 bits are stage 1's digit.
            head_after_0 = steps[0][1][0]
            assert head_after_0 >> 6 == digits[1]
