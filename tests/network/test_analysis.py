"""Graph analysis: the structural claims of Figure 1."""

import random

import pytest

from repro.network import analysis
from repro.network.multibutterfly import wire
from repro.network.topology import figure1_plan, figure3_plan


@pytest.fixture(scope="module")
def fig1():
    plan = figure1_plan()
    links = wire(plan, rng=random.Random(1))
    graph = analysis.build_graph(plan, links)
    return plan, links, graph


class TestPathCounting:
    def test_paths_exist_between_all_pairs(self, fig1):
        plan, _links, graph = fig1
        for src in range(16):
            for dest in range(16):
                assert analysis.count_paths(plan, graph, src, dest) > 0

    def test_figure1_multiplicity(self, fig1):
        """Dilation 2 at two stages and two ports per endpoint side give
        2 (src ports) x 2 x 2 (dilation choices) = 8 distinct routes,
        each ending at one of the endpoint's two input wires."""
        plan, _links, graph = fig1
        count = analysis.count_paths(plan, graph, 5, 15)  # endpoints 6->16
        assert count == 8

    def test_multiplicity_uniform_across_pairs(self, fig1):
        plan, _links, graph = fig1
        assert analysis.min_route_diversity(plan, graph) == 8
        matrix = analysis.path_multiplicity_matrix(plan, graph)
        assert all(value == 8 for row in matrix for value in row)

    def test_route_subgraph_excludes_wrong_directions(self, fig1):
        plan, _links, graph = fig1
        sub = analysis.route_subgraph(plan, graph, dest=0)
        # Every surviving router edge must match dest 0's digits (all 0).
        for u, v, attrs in sub.edges(data=True):
            if attrs["direction"] is not None:
                assert attrs["direction"] == 0


class TestFaultTolerance:
    def test_final_stage_router_loss_tolerated(self, fig1):
        """Figure 1: 'the final stage uses dilation-1 METRO routers
        [allowing] the network ... to tolerate the complete loss of any
        router in the final stage without isolating any endpoints'."""
        plan, _links, graph = fig1
        assert analysis.tolerates_any_single_router_loss(plan, graph, stage=2)

    def test_earlier_stage_router_loss_tolerated(self, fig1):
        plan, _links, graph = fig1
        assert analysis.tolerates_any_single_router_loss(plan, graph, stage=0)
        assert analysis.tolerates_any_single_router_loss(plan, graph, stage=1)

    def test_single_link_loss_tolerated(self, fig1):
        plan, _links, graph = fig1
        # Removing any one inter-router edge never isolates a pair.
        router_edges = [
            (u, v, k)
            for u, v, k in graph.edges(keys=True)
            if u[0] == "r" and v[0] == "r"
        ]
        sample = router_edges[:: max(1, len(router_edges) // 12)]
        for edge in sample:
            broken = analysis.isolated_pairs_after_loss(
                plan, graph, removed_edges=[edge]
            )
            assert broken == []

    def test_losing_both_endpoint_inputs_isolates(self, fig1):
        plan, _links, graph = fig1
        # Cutting both wires into endpoint 3 must isolate it as a dest.
        into_three = [
            (u, v, k) for u, v, k in graph.edges(keys=True) if v == ("dst", 3)
        ]
        assert len(into_three) == 2
        broken = analysis.isolated_pairs_after_loss(
            plan, graph, removed_edges=into_three
        )
        assert {pair[1] for pair in broken} == {3}
        assert len(broken) == 16  # every source lost endpoint 3


class TestFigure3Graph:
    def test_figure3_route_diversity(self):
        plan = figure3_plan()
        links = wire(plan, rng=random.Random(2))
        graph = analysis.build_graph(plan, links)
        # 2 source ports x dilation 2 x dilation 2 x dilation 1 = 8.
        assert analysis.count_paths(plan, graph, 0, 63) == 8


class TestPathCountFormula:
    def test_count_matches_closed_form(self, fig1):
        """For uniform multibutterflies the legal-route count has a
        closed form: out_ports x prod(dilations)."""
        plan, _links, graph = fig1
        expected = plan.endpoint_out_ports
        for stage in plan.stages:
            expected *= stage.dilation
        assert analysis.count_paths(plan, graph, 2, 11) == expected

    def test_formula_on_figure3(self):
        import math

        plan = figure3_plan()
        links = wire(plan, rng=random.Random(5))
        graph = analysis.build_graph(plan, links)
        expected = plan.endpoint_out_ports * math.prod(
            s.dilation for s in plan.stages
        )
        assert analysis.count_paths(plan, graph, 7, 42) == expected
