"""NetworkPlan arithmetic and the paper's Figure 1 / Figure 3 networks."""

import pytest

from repro.core.parameters import RouterParameters
from repro.network.topology import NetworkPlan, StageSpec, figure1_plan, figure3_plan


class TestFigure1:
    def test_structure_matches_paper(self):
        plan = figure1_plan()
        assert plan.n_endpoints == 16
        assert plan.endpoint_out_ports == 2
        assert plan.endpoint_in_ports == 2
        assert plan.n_stages == 3
        # "constructed from 4x2 (inputs x radix), dilation-2 METRO
        #  routers and 4x4 dilation-1 routers"
        assert plan.stages[0].radix == 2 and plan.stages[0].dilation == 2
        assert plan.stages[1].radix == 2 and plan.stages[1].dilation == 2
        assert plan.stages[2].radix == 4 and plan.stages[2].dilation == 1

    def test_router_counts(self):
        plan = figure1_plan()
        assert [plan.routers_in_stage(s) for s in range(3)] == [8, 8, 8]
        assert plan.total_routers() == 24

    def test_block_refinement(self):
        plan = figure1_plan()
        assert plan.blocks_per_stage == [1, 2, 4]
        # endpoint 13 = digits (1, 1, 1): blocks 0 -> 1 -> 3.
        assert plan.destination_block(0, 13) == 0
        assert plan.destination_block(1, 13) == 1
        assert plan.destination_block(2, 13) == 3


class TestFigure3:
    def test_structure_matches_paper(self):
        plan = figure3_plan()
        assert plan.n_endpoints == 64
        assert plan.n_stages == 3
        assert all(stage.radix == 4 for stage in plan.stages)
        assert [stage.dilation for stage in plan.stages] == [2, 2, 1]
        assert all(stage.params.w == 8 for stage in plan.stages)

    def test_router_counts(self):
        plan = figure3_plan()
        assert [plan.routers_in_stage(s) for s in range(3)] == [16, 16, 32]


class TestValidation:
    def test_radix_product_must_equal_endpoints(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2)
        with pytest.raises(ValueError):
            NetworkPlan(8, 2, 2, [StageSpec(params, 2), StageSpec(params, 2)])

    def test_wires_must_fill_routers(self):
        params = RouterParameters(i=8, o=8, w=8, max_d=2)
        # 4 endpoints x 1 port = 4 wires cannot fill an 8-input router.
        with pytest.raises(ValueError):
            NetworkPlan(4, 1, 1, [StageSpec(params, 2)])

    def test_endpoint_in_ports_must_match(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2)
        stages = [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)]
        NetworkPlan(16, 2, 2, stages)  # correct
        with pytest.raises(ValueError):
            NetworkPlan(16, 2, 1, stages)

    def test_single_stage_crossbar(self):
        # A lone dilation-1 router is a plain 4x4 crossbar network.
        params = RouterParameters(i=4, o=4, w=4, max_d=2)
        plan = NetworkPlan(4, 1, 1, [StageSpec(params, 1)])
        assert plan.total_routers() == 1

    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            NetworkPlan(4, 1, 1, [])


class TestDestinationBlock:
    def test_all_destinations_land_in_distinct_final_blocks(self):
        plan = figure1_plan()
        finals = {plan.destination_block(2, d) for d in range(16)}
        # Stage-2 blocks refine into 16 leaf classes after routing; the
        # stage-2 block only distinguishes groups of four.
        assert finals == set(range(4))

    def test_block_index_monotone_in_destination(self):
        plan = figure3_plan()
        for stage in range(plan.n_stages):
            blocks = [plan.destination_block(stage, d) for d in range(64)]
            assert blocks == sorted(blocks)


class TestMultibutterflyPlan:
    def test_reproduces_figure3_shape(self):
        from repro.network.topology import multibutterfly_plan

        plan = multibutterfly_plan(64, router_ports=8, w=8)
        reference = figure3_plan()
        assert plan.stage_radices() == reference.stage_radices()
        assert [s.dilation for s in plan.stages] == [2, 2, 1]
        assert plan.n_endpoints == 64

    @pytest.mark.parametrize("n", [4, 16, 64, 256, 1024])
    def test_power_of_two_sizes(self, n):
        from repro.network.topology import multibutterfly_plan

        plan = multibutterfly_plan(n, router_ports=8, w=8)
        assert plan.n_endpoints == n
        assert plan.stages[-1].dilation == 1
        assert all(s.dilation == 2 for s in plan.stages[:-1])

    def test_non_power_of_two_rejected(self):
        from repro.network.topology import multibutterfly_plan

        with pytest.raises(ValueError):
            multibutterfly_plan(24)

    def test_unreachable_size_rejected(self):
        from repro.network.topology import multibutterfly_plan

        # radix-4 stages + radix-4 final can only hit powers of 4.
        with pytest.raises(ValueError):
            multibutterfly_plan(32, router_ports=8, w=8)

    def test_radix2_parts_reach_any_power_of_two(self):
        from repro.network.topology import multibutterfly_plan

        plan = multibutterfly_plan(32, router_ports=4, w=4)
        assert plan.n_endpoints == 32
        assert plan.stage_radices()[-1] == 2

    def test_built_plan_delivers(self):
        from repro.endpoint.messages import Message
        from repro.network.builder import build_network
        from repro.network.topology import multibutterfly_plan

        network = build_network(multibutterfly_plan(16, router_ports=8, w=8), seed=5)
        message = network.send(3, Message(dest=12, payload=[1, 2]))
        assert network.run_until_quiet(max_cycles=5000)
        assert message.outcome == "delivered"


class TestTable3Plans:
    def test_four_stage_form(self):
        from repro.network.topology import table3_32node_plan

        plan = table3_32node_plan()
        assert plan.n_endpoints == 32
        assert plan.stage_radices() == [2, 2, 2, 4]
        assert [s.dilation for s in plan.stages] == [2, 2, 2, 1]

    def test_two_stage_form(self):
        from repro.network.topology import table3_32node_plan

        plan = table3_32node_plan(two_stage=True)
        assert plan.n_endpoints == 32
        assert plan.stage_radices() == [4, 8]
        assert [s.dilation for s in plan.stages] == [2, 1]

    def test_both_forms_deliver(self):
        from repro.endpoint.messages import Message
        from repro.network.builder import build_network
        from repro.network.topology import table3_32node_plan

        for two_stage in (False, True):
            network = build_network(
                table3_32node_plan(two_stage=two_stage), seed=9
            )
            message = network.send(3, Message(dest=28, payload=[1, 2]))
            assert network.run_until_quiet(max_cycles=10000)
            assert message.outcome == "delivered", two_stage

    def test_hbits_match_paper(self):
        from repro.network.builder import build_network
        from repro.network.topology import table3_32node_plan

        for two_stage in (False, True):
            network = build_network(
                table3_32node_plan(two_stage=two_stage), seed=10
            )
            assert network.codec.hbits() == 8  # Table 4's value for both
