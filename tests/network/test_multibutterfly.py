"""Wiring construction invariants."""

import random

from repro.network.multibutterfly import wire
from repro.network.topology import figure1_plan, figure3_plan


def _links(plan, randomize=True, seed=0):
    return wire(plan, rng=random.Random(seed), randomize=randomize)


def test_every_port_wired_exactly_once():
    plan = figure1_plan()
    links = _links(plan)
    sources = [link.src.key() for link in links]
    dests = [link.dst.key() for link in links]
    assert len(sources) == len(set(sources))
    assert len(dests) == len(set(dests))


def test_link_count_matches_plan():
    plan = figure1_plan()
    links = _links(plan)
    # 32 endpoint wires in + 32 out of each of stages 0 and 1 + 32 into
    # endpoints = 4 * 32.
    assert len(links) == 4 * 32


def test_figure3_link_count():
    plan = figure3_plan()
    links = _links(plan)
    assert len(links) == 4 * 128


def test_outputs_land_in_correct_blocks():
    """A stage-s router's direction-g wires must feed block b*r+g."""
    plan = figure1_plan()
    links = _links(plan)
    for link in links:
        if link.src.kind != "router" or link.dst.kind != "router":
            continue
        stage = plan.stages[link.src.stage]
        direction = link.src.port // stage.dilation
        expected_block = link.src.block * stage.radix + direction
        assert link.dst.stage == link.src.stage + 1
        assert link.dst.block == expected_block


def test_final_stage_feeds_matching_endpoints():
    plan = figure1_plan()
    links = _links(plan)
    final = plan.n_stages - 1
    stage = plan.stages[final]
    for link in links:
        if link.src.kind != "router" or link.src.stage != final:
            continue
        assert link.dst.kind == "endpoint"
        direction = link.src.port // stage.dilation
        expected_endpoint = link.src.block * stage.radix + direction
        assert link.dst.index == expected_endpoint


def test_randomization_changes_wiring_but_not_structure():
    plan = figure1_plan()
    a = _links(plan, seed=1)
    b = _links(plan, seed=2)
    assert len(a) == len(b)
    pairs_a = {(l.src.key(), l.dst.key()) for l in a}
    pairs_b = {(l.src.key(), l.dst.key()) for l in b}
    assert pairs_a != pairs_b  # different permutations
    # But the multiset of endpoints-of-links is identical.
    assert {k for k, _ in pairs_a} == {k for k, _ in pairs_b}
    assert {k for _, k in pairs_a} == {k for _, k in pairs_b}


def test_deterministic_wiring_reproducible():
    plan = figure1_plan()
    a = _links(plan, randomize=False)
    b = _links(plan, randomize=False)
    assert [(l.src.key(), l.dst.key()) for l in a] == [
        (l.src.key(), l.dst.key()) for l in b
    ]


def test_same_seed_same_wiring():
    plan = figure3_plan()
    a = _links(plan, seed=9)
    b = _links(plan, seed=9)
    assert [(l.src.key(), l.dst.key()) for l in a] == [
        (l.src.key(), l.dst.key()) for l in b
    ]
