"""DOT export."""

import random

from repro.network.dot import network_to_dot
from repro.network.multibutterfly import wire
from repro.network.topology import figure1_plan


def _dot(highlight=None):
    plan = figure1_plan()
    links = wire(plan, rng=random.Random(1))
    return network_to_dot(plan, links, highlight_dest=highlight)


def test_contains_all_nodes():
    text = _dot()
    for e in range(16):
        assert '"src{}"'.format(e) in text
        assert '"dst{}"'.format(e) in text
    assert '"r0.0.0"' in text
    assert '"r2.3.1"' in text


def test_edge_count():
    text = _dot()
    assert text.count(" -> ") == 4 * 32


def test_stage_clusters_labelled():
    text = _dot()
    assert "stage 0 (4x4 r=2 d=2)" in text
    assert "stage 2 (4x4 r=4 d=1)" in text


def test_highlighting_marks_legal_routes_only():
    text = _dot(highlight=15)
    bold = [line for line in text.splitlines() if "penwidth" in line]
    # Routes to endpoint 15: 32 src edges + stage-0/1 direction edges +
    # final edges; all are legal-route members, none is zero.
    assert bold
    # No edge into a different destination is highlighted.
    assert not any('-> "dst3"' in line for line in bold)
    assert any('-> "dst15"' in line for line in bold)


def test_valid_dot_structure():
    text = _dot()
    assert text.startswith("digraph metro {")
    assert text.rstrip().endswith("}")
    assert text.count("{") == text.count("}")
