"""Network-scale width cascading: lockstep slices, wide datapaths."""

import pytest

from repro.endpoint.messages import DELIVERED
from repro.network.cascaded import CascadedNetwork
from repro.network.topology import figure1_plan


def _cascaded(c=2, seed=5, **kwargs):
    return CascadedNetwork(figure1_plan(), c=c, seed=seed, **kwargs)


class TestWideDelivery:
    def test_wide_message_delivers_and_rejoins(self):
        network = _cascaded(c=2)  # w=4 slices -> 8-bit wide words
        wide = network.send_wide(3, 12, [0xA7, 0x3C, 0xFF])
        assert network.run_until_quiet(max_cycles=20000)
        assert wide.outcome == DELIVERED
        assert wide.slices_in_lockstep()
        assert network.consistent()

    def test_four_wide(self):
        network = _cascaded(c=4)  # 16-bit wide words
        wide = network.send_wide(0, 9, [0xBEEF, 0x1234])
        assert network.run_until_quiet(max_cycles=20000)
        assert wide.outcome == DELIVERED
        assert wide.latency is not None
        assert network.inuse_mismatches == 0

    def test_wide_word_range_checked(self):
        network = _cascaded(c=2)
        with pytest.raises(ValueError):
            network.send_wide(0, 1, [0x100])  # 9 bits > 8

    def test_wide_reply_rejoined(self):
        network = _cascaded(c=2)
        # Install a reply handler echoing the (slice) payload back.
        for slice_network in network.slices:
            slice_network.endpoints[7].reply_handler = (
                lambda payload, ok: (list(payload), 0)
            )
        wide = network.send_wide(1, 7, [0x5A, 0xC3])
        assert network.run_until_quiet(max_cycles=20000)
        reply = wide.wide_reply(network.w)
        # Echoed payload (the trailing word is the per-slice checksum,
        # which differs by slice and is protocol overhead).
        assert reply[:2] == [0x5A, 0xC3]


class TestLockstep:
    def test_contention_resolves_identically_across_slices(self):
        network = _cascaded(c=2, seed=8)
        wides = [
            network.send_wide(src, (src + 7) % 16, [src, 2 * src % 256])
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=60000)
        for wide in wides:
            assert wide.outcome == DELIVERED
            assert wide.slices_in_lockstep()
        assert network.inuse_mismatches == 0

    def test_cascade_speedup_for_long_messages(self):
        """A 20-byte message is 40 words at w=4 but 20 at w=4 x2:
        the cascaded delivery must be meaningfully faster (Table 3's
        cascade-row scaling, measured behaviourally)."""
        narrow = CascadedNetwork(figure1_plan(), c=1, seed=9)
        wide_net = CascadedNetwork(figure1_plan(), c=2, seed=9)
        # 20 bytes as wide words for each width.
        narrow_msg = narrow.send_wide(2, 13, [0xA] * 40)      # 4-bit words
        wide_msg = wide_net.send_wide(2, 13, [0xAA] * 20)     # 8-bit words
        assert narrow.run_until_quiet(max_cycles=20000)
        assert wide_net.run_until_quiet(max_cycles=20000)
        assert narrow_msg.outcome == wide_msg.outcome == DELIVERED
        saved = narrow_msg.latency - wide_msg.latency
        assert saved >= 15  # ~20 serialization cycles saved


class TestFaultContainment:
    def test_slice_divergence_detected_and_killed(self):
        """Force one slice's router to claim an output the other slice
        did not (the effect of a corrupted header slice): the
        cross-slice IN-USE check must fire and shut the connection down
        on every slice."""
        from repro.core.router import FORWARD_STATE, IDLE_STATE

        network = _cascaded(c=2, seed=10)
        key = (0, 0, 0)
        rogue = network.slices[1].router_grid[key]
        # Hand-open a connection on slice 1 only: forward port 0
        # claims a direction-0 output, slice 0 claims nothing.
        conn = rogue._conns[0]
        port = rogue.allocator.allocate(0, decision_key=0)
        conn.bwd_port = port
        rogue._bwd_owner[port] = conn
        conn.state = FORWARD_STATE
        assert not network.consistent()

        network.step()
        assert network.inuse_mismatches == 1
        network.run(3)
        # Both slices end with the connection gone and ports free.
        for slice_network in network.slices:
            router = slice_network.router_grid[key]
            assert router.busy_backward_ports() == []
        assert network.consistent()


class TestSliceFaultDivergence:
    def test_dead_wire_in_one_slice_breaks_lockstep_but_delivers(self):
        """A fault in a single slice is the cascade's worst case: the
        slices stop being identical.  The wide message must still be
        accounted for — the healthy slice delivers, the faulty slice
        retries until it finds a path — and the divergence is visible
        through slices_in_lockstep()."""
        from repro.faults.injector import FaultInjector, router_to_router_channels
        from repro.faults.model import DeadLink

        network = _cascaded(c=2, seed=13)
        victim = router_to_router_channels(network.slices[0])[4]
        FaultInjector(network.slices[0]).now(
            DeadLink(src_key=victim[0], dst_key=victim[1])
        )
        wides = [
            network.send_wide(src, (src + 5) % 16, [src, src])
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=200000)
        for wide in wides:
            assert wide.outcome == DELIVERED
        # At least one message hit the dead wire in slice 0 only.
        assert any(not w.slices_in_lockstep() for w in wides)
