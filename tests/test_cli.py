"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


def _run(capsys, argv):
    code = main(argv)
    assert code == 0
    return capsys.readouterr().out


def test_table3(capsys):
    out = _run(capsys, ["table3"])
    assert "METROJR-ORBIT" in out
    assert "1250" in out


def test_table5(capsys):
    out = _run(capsys, ["table5"])
    assert "GIGAswitch" in out
    assert "Mercury/Race" in out


def test_figure1(capsys):
    out = _run(capsys, ["figure1"])
    assert "paths endpoint 6 -> 16: 8" in out
    assert "survives any single stage-2 router loss: True" in out


def test_figure3_small(capsys):
    out = _run(
        capsys,
        ["figure3", "--rates", "0.005,0.08", "--warmup", "200", "--measure", "600"],
    )
    assert "Unloaded latency" in out
    assert "mean_latency" in out
    assert "latency vs delivered load" in out  # the ascii chart rendered


def test_faults_small(capsys):
    out = _run(
        capsys,
        ["faults", "--links", "2", "--warmup", "200", "--measure", "600"],
    )
    assert "Fault degradation point" in out


def test_send(capsys):
    out = _run(capsys, ["send", "5", "15"])
    assert "5 -> 15: delivered" in out


def test_send_verbose_traces_protocol(capsys):
    out = _run(capsys, ["send", "2", "9", "--verbose"])
    assert "conn-open" in out
    assert "conn-turn" in out
    assert "recv-message" in out


def test_send_fattree(capsys):
    out = _run(capsys, ["send", "1", "14", "--network", "fattree"])
    assert "delivered" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_breakdown(capsys):
    out = _run(capsys, ["breakdown"])
    assert "Latency decomposition" in out
    assert "injection_dominates" in out
