"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


def _run(capsys, argv):
    code = main(argv)
    assert code == 0
    return capsys.readouterr().out


def test_table3(capsys):
    out = _run(capsys, ["table3"])
    assert "METROJR-ORBIT" in out
    assert "1250" in out


def test_table5(capsys):
    out = _run(capsys, ["table5"])
    assert "GIGAswitch" in out
    assert "Mercury/Race" in out


def test_figure1(capsys):
    out = _run(capsys, ["figure1"])
    assert "paths endpoint 6 -> 16: 8" in out
    assert "survives any single stage-2 router loss: True" in out


def test_figure3_small(capsys):
    out = _run(
        capsys,
        ["figure3", "--rates", "0.005,0.08", "--warmup", "200", "--measure", "600"],
    )
    assert "Unloaded latency" in out
    assert "mean_latency" in out
    assert "latency vs delivered load" in out  # the ascii chart rendered


def test_faults_small(capsys):
    out = _run(
        capsys,
        ["faults", "--links", "2", "--warmup", "200", "--measure", "600"],
    )
    assert "Fault degradation point" in out


def test_send(capsys):
    out = _run(capsys, ["send", "5", "15"])
    assert "5 -> 15: delivered" in out


def test_send_verbose_traces_protocol(capsys):
    out = _run(capsys, ["send", "2", "9", "--verbose"])
    assert "conn-open" in out
    assert "conn-turn" in out
    assert "recv-message" in out


def test_send_fattree(capsys):
    out = _run(capsys, ["send", "1", "14", "--network", "fattree"])
    assert "delivered" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_accepts_parallel_flags():
    args = build_parser().parse_args(
        ["--workers", "4", "--cache-dir", "/tmp/x", "--progress", "figure3"]
    )
    assert args.workers == 4
    assert args.cache_dir == "/tmp/x"
    assert args.progress


def test_figure3_workers_and_cache(tmp_path, capsys):
    argv = [
        "--workers", "2", "--cache-dir", str(tmp_path),
        "figure3", "--rates", "0.005,0.08", "--warmup", "150", "--measure", "400",
    ]
    first = _run(capsys, argv)
    assert "Unloaded latency" in first
    assert "latency vs delivered load" in first
    # Second invocation answers from the trial cache with identical output.
    second = _run(capsys, argv)
    assert "mean_latency" in second
    assert first == second
    cached = list(tmp_path.rglob("*.pkl"))
    assert len(cached) == 2  # one entry per swept rate


def test_faults_levels_sweep(capsys):
    out = _run(
        capsys,
        ["faults", "--levels", "0:0,2:0", "--warmup", "150", "--measure", "400"],
    )
    assert "Fault degradation sweep" in out
    assert "links=2 routers=0" in out


def test_progress_lines_go_to_stderr(tmp_path, capsys):
    code = main(
        ["--progress", "--cache-dir", str(tmp_path),
         "faults", "--levels", "0:0", "--warmup", "150", "--measure", "400"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "links=0 routers=0" in captured.err  # progress line
    assert "trials: 1 executed" in captured.err  # stats line
    assert "Fault degradation sweep" in captured.out


def test_breakdown(capsys):
    out = _run(capsys, ["breakdown"])
    assert "Latency decomposition" in out
    assert "injection_dominates" in out


def test_send_trace_export_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.telemetry import validate_trace_events

    path = tmp_path / "trace.json"
    out = _run(capsys, ["send", "5", "15", "--trace-export", str(path)])
    assert "wrote" in out and "trace events" in out
    document = json.loads(path.read_text())
    n_events = validate_trace_events(document)
    assert n_events > 0
    names = {event["name"] for event in document["traceEvents"]}
    # The full send lifecycle is on the timeline.
    assert {"attempt", "setup", "stream", "reply", "deliver"} <= names


def test_figure3_metrics_prints_percentiles_and_heatmap(capsys):
    out = _run(
        capsys,
        ["figure3", "--rates", "0.01,0.05", "--warmup", "150",
         "--measure", "400", "--metrics"],
    )
    assert "message.latency.cycles" in out
    assert "utilization by stage" in out
    assert "stage 0" in out


def test_figure3_metrics_serial_equals_parallel(capsys):
    argv = ["figure3", "--rates", "0.01,0.05", "--warmup", "150",
            "--measure", "400", "--metrics"]
    serial = _run(capsys, argv)
    parallel = _run(capsys, ["--workers", "2"] + argv)
    assert serial == parallel


def test_faults_metrics_point(capsys):
    out = _run(
        capsys,
        ["faults", "--links", "2", "--warmup", "150", "--measure", "400",
         "--metrics"],
    )
    assert "Fault degradation point" in out
    assert "message.latency.cycles" in out


# ---------------------------------------------------------------------------
# Exit codes: failures must be visible to shells and CI, not printed-and-0
# ---------------------------------------------------------------------------


def test_send_exits_nonzero_when_undelivered(capsys):
    """A cycle budget too small for delivery is a failed send."""
    code = main(["send", "5", "15", "--max-cycles", "10"])
    captured = capsys.readouterr()
    assert code == 1
    assert "not delivered" in captured.err


def test_send_exit_zero_on_delivery():
    assert main(["send", "5", "15"]) == 0


def test_faults_levels_within_degradation_bound(capsys):
    code = main(
        ["faults", "--levels", "0:0,2:0", "--warmup", "150",
         "--measure", "400", "--max-degradation", "0.9"]
    )
    assert code == 0
    assert "Fault degradation sweep" in capsys.readouterr().out


def test_faults_levels_beyond_degradation_bound(capsys):
    """An impossible bound (no degradation allowed, down to the last
    delivered word) must flip the exit code on a heavily faulted run."""
    code = main(
        ["faults", "--levels", "0:0,16:6", "--warmup", "150",
         "--measure", "400", "--max-degradation", "0.0"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "FAIL" in captured.err


def test_verify_sweep_passes(capsys):
    code = main(["verify", "--trials", "4"])
    captured = capsys.readouterr()
    assert code == 0
    assert "4/4 configurations agree" in captured.out


def test_verify_sweep_parallel_matches_serial(capsys):
    serial = _run(capsys, ["verify", "--trials", "6"])
    parallel = _run(capsys, ["--workers", "2", "verify", "--trials", "6"])
    assert serial == parallel


def test_verify_replay_round_trip(tmp_path, capsys):
    from repro.verify.scenario import random_scenario

    path = tmp_path / "scenario.json"
    random_scenario(7, n_messages=1).save(str(path))
    code = main(["verify", "--replay", str(path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "violations=0" in captured.out


def test_verify_replay_failing_scenario_exits_nonzero(tmp_path, capsys):
    """A scenario whose message cannot finish inside the cycle budget
    replays as a failure."""
    from repro.verify.scenario import random_scenario

    path = tmp_path / "scenario.json"
    random_scenario(7, n_messages=1).save(str(path))
    code = main(["verify", "--replay", str(path), "--max-cycles", "5"])
    assert code == 1
    assert "quiet=False" in capsys.readouterr().out


_CHAOS_SMALL = [
    "chaos", "--seeds", "1", "--windows", "6", "--window-cycles", "200",
    "--warmup-windows", "2", "--mtbf", "400", "--mttr", "200",
]


def test_chaos_small_soak(capsys):
    out = _run(capsys, _CHAOS_SMALL)
    assert "Chaos soak" in out
    assert "availability" in out
    assert "masked_wires" in out


def test_chaos_compare_runs_both_heal_modes(capsys):
    out = _run(capsys, _CHAOS_SMALL + ["--compare"])
    assert "heal=on" in out
    assert "heal=off" in out


def test_chaos_snapshot_writes_json(tmp_path, capsys):
    path = tmp_path / "chaos.json"
    out = _run(capsys, _CHAOS_SMALL + ["--snapshot", str(path)])
    assert "wrote soak snapshot" in out
    import json

    with open(path) as handle:
        document = json.load(handle)
    assert "soaks" in document and "metrics" in document
    assert document["soaks"][0]["availability"] is not None


def test_chaos_slo_violation_exits_nonzero(capsys):
    # An impossible availability bound must flip the exit code.
    code = main(_CHAOS_SMALL + ["--min-availability", "1.1"])
    captured = capsys.readouterr()
    assert code == 1
    assert "violated SLO" in captured.err


def test_verify_resume_diff_sweep(capsys):
    out = _run(capsys, ["verify", "--resume-diff", "--trials", "2"])
    assert "resumed byte-identically" in out
    assert "2/2" in out


def test_chaos_snapshot_every_requires_dir(capsys):
    code = main(_CHAOS_SMALL + ["--snapshot-every", "2"])
    assert code == 2
    assert "--snapshot-dir" in capsys.readouterr().err


def test_chaos_ring_then_resume(tmp_path, capsys):
    ring_root = tmp_path / "rings"
    out = _run(
        capsys,
        _CHAOS_SMALL
        + ["--snapshot-every", "2", "--snapshot-dir", str(ring_root)],
    )
    assert "Chaos soak" in out
    ring = ring_root / "soak0-healon"
    assert any(
        name.startswith("chaos-") and name.endswith(".snap")
        for name in __import__("os").listdir(str(ring))
    )
    resumed = _run(capsys, ["chaos", "--resume", str(ring)])
    assert "resumed interrupted soak" in resumed
    assert "Chaos soak: resumed" in resumed
    # The resumed soak scores exactly like the uninterrupted one: the
    # result row (label, windows, availability, ...) is identical.
    assert out.splitlines()[-1] == resumed.splitlines()[-1]


def test_faults_max_attempts_flag_parses():
    args = build_parser().parse_args(
        ["faults", "--max-attempts", "40", "--max-undeliverable", "0"]
    )
    assert args.max_attempts == 40
    assert args.max_undeliverable == 0


def test_faults_undeliverable_bound(capsys):
    """With generous bounds the faulted sweep still passes; the flag is
    exercised end-to-end (finite attempts surface abandoned sends)."""
    code = main(
        ["faults", "--levels", "0:0,2:0", "--warmup", "150",
         "--measure", "400", "--max-attempts", "40",
         "--max-undeliverable", "1000"]
    )
    assert code == 0
    assert "Fault degradation sweep" in capsys.readouterr().out


def test_verify_saves_artifacts_on_mismatch(tmp_path, capsys, monkeypatch):
    """A model/simulator disagreement exits 1 and leaves committed,
    shrunk scenario JSON behind for CI to upload."""
    from repro.verify import differential

    monkeypatch.setattr(differential, "model_slack", lambda scenario: -999)
    code = main(
        ["verify", "--trials", "2", "--shrink", "--save", str(tmp_path)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "MISMATCH" in captured.out
    assert (tmp_path / "diff-fail-0.json").exists()
    assert (tmp_path / "diff-fail-0.min.json").exists()


CHAOS_SMALL = [
    "chaos", "--seeds", "1", "--windows", "4", "--window-cycles", "150",
    "--warmup-windows", "1", "--mtbf", "300", "--mttr", "150",
]


def test_chaos_stream_writes_log_and_tail_renders_it(tmp_path, capsys):
    logs = tmp_path / "logs"
    out = _run(capsys, CHAOS_SMALL + ["--stream", str(logs)])
    assert "Chaos soak" in out
    log_path = logs / "soak0-healon.jsonl"
    assert log_path.exists()

    from repro.telemetry import (
        merge_stream_metrics, read_run_log, validate_run_log,
    )

    events = read_run_log(str(log_path))
    assert validate_run_log(events) == len(events)
    # --stream implies metrics, so the log carries deltas.
    assert len(merge_stream_metrics(events))

    rendered = _run(capsys, ["tail", str(log_path)])
    assert "delivered/window:" in rendered
    assert "run ended at cycle" in rendered


def test_tail_follow_replays_a_finished_log(tmp_path, capsys):
    logs = tmp_path / "logs"
    _run(capsys, CHAOS_SMALL + ["--stream", str(logs)])
    out = _run(
        capsys,
        ["tail", str(logs / "soak0-healon.jsonl"), "--follow",
         "--interval", "0.01"],
    )
    assert "run.start" in out
    assert "window" in out
    assert "run.end" in out


def test_tail_rejects_missing_and_invalid_logs(tmp_path, capsys):
    assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"event": "not-a-run-start"}\n')
    assert main(["tail", str(bad)]) == 2
    assert "tail:" in capsys.readouterr().err


def test_figure3_metrics_export_round_trips(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    out = _run(
        capsys,
        ["figure3", "--rates", "0.01", "--warmup", "100", "--measure",
         "300", "--metrics-export", str(path)],
    )
    assert "wrote metrics snapshot" in out

    import json

    from repro.telemetry import snapshot_from_jsonable

    document = json.loads(path.read_text())
    assert document["format"] == "metro-metrics-v1"
    snapshot = snapshot_from_jsonable(document["series"])
    assert snapshot.histogram("message.latency.cycles").count > 0
    assert document["rendered"]


def test_bench_check_flags_seeded_slowdown(tmp_path, capsys):
    from repro.harness.benchtrack import append_record, make_record, metric

    history = str(tmp_path)
    for value in (100.0, 102.0, 98.0, 49.0):
        append_record(
            history,
            make_record("demo", {"speed": metric(value, portable=True)}),
        )
    code = main(["bench-check", "--history-dir", history])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION demo/speed" in captured.out
    assert "regressed" in captured.err

    # The same history passes with a tolerant threshold...
    assert main(
        ["bench-check", "--history-dir", history, "--threshold", "5.0"]
    ) == 0
    assert "ok" in capsys.readouterr().out
    # ...and a missing directory is a usage error, not a regression.
    assert main(
        ["bench-check", "--history-dir", str(tmp_path / "nope")]
    ) == 2


def test_bench_check_portable_only_skips_local_metrics(tmp_path, capsys):
    from repro.harness.benchtrack import append_record, make_record, metric

    history = str(tmp_path)
    for value in (100.0, 102.0, 98.0, 49.0):
        append_record(
            history,
            make_record(
                "demo", {"wall_rate": metric(value, portable=False)}
            ),
        )
    assert main(
        ["bench-check", "--history-dir", history, "--portable-only"]
    ) == 0
    assert "insufficient history" in capsys.readouterr().out


_FIG3_SMALL = ["figure3", "--rates", "0.005,0.01", "--warmup", "200",
               "--measure", "600"]


def test_figure3_journal_then_resume(tmp_path, capsys):
    journal = str(tmp_path / "run.jsonl")
    argv = ["--cache-dir", str(tmp_path / "cache")] + _FIG3_SMALL
    out = _run(capsys, argv + ["--journal", journal])
    resumed = _run(capsys, argv + ["--resume", journal])
    # Identical tables: the resumed run served everything by replay.
    assert out.splitlines()[-1] == resumed.splitlines()[-1]
    from repro.harness.journal import load_journal_state

    state = load_journal_state(journal)
    assert state.completed and len(state.done) == 2


def test_tail_renders_a_run_journal(tmp_path, capsys):
    journal = str(tmp_path / "run.jsonl")
    _run(
        capsys,
        ["--cache-dir", str(tmp_path / "cache")] + _FIG3_SMALL
        + ["--journal", journal],
    )
    out = _run(capsys, ["tail", journal])
    assert "run journal" in out
    assert "sweep completed" in out
    assert "rate=0.005" in out


def test_quarantined_sweep_exits_3_with_report(tmp_path, capsys, monkeypatch):
    from repro.harness.chaosmonkey import arm

    for key, value in arm(str(tmp_path / "ledger"), target="rate=0.01",
                          strikes=3).items():
        monkeypatch.setenv(key, value)
    code = main(
        ["--workers", "2"] + _FIG3_SMALL + ["--retries", "3", "--quarantine"]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "Quarantined trials" in captured.out
    assert "crash x3" in captured.out
    assert "quarantined" in captured.err
    # The healthy trial still rendered.
    assert "rate=0.005" in captured.out


def test_parser_accepts_resilience_flags():
    parser = build_parser()
    args = parser.parse_args(
        _FIG3_SMALL + ["--journal", "j.jsonl", "--retries", "3",
                       "--quarantine"]
    )
    assert args.journal == "j.jsonl"
    assert args.retries == 3
    assert args.quarantine is True
    args = parser.parse_args(["saturation", "--journal", "j.jsonl"])
    assert args.journal == "j.jsonl"
    # Saturation has no --quarantine (its search needs real results).
    with pytest.raises(SystemExit):
        parser.parse_args(["saturation", "--quarantine"])
