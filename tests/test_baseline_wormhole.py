"""The wormhole packet-switched baseline."""

import random

import pytest

from repro.baseline.builder import build_wormhole_network
from repro.network.topology import figure1_plan, figure3_plan


def _network(plan=None, seed=1, **kwargs):
    return build_wormhole_network(plan or figure1_plan(), seed=seed, **kwargs)


class TestDelivery:
    def test_single_packet(self):
        network = _network()
        packet = network.send(2, 13, [1, 2, 3, 4])
        assert network.run_until_quiet(max_cycles=5000)
        assert packet.done_cycle is not None
        assert packet.checksum_ok
        assert network.delivered == [packet]
        assert network.checksum_failures == 0

    def test_every_pair_delivers(self):
        network = _network(seed=2)
        packets = []
        for src in range(16):
            for dest in range(16):
                packets.append(network.send(src, dest, [src, dest]))
        assert network.run_until_quiet(max_cycles=100000)
        assert len(network.delivered) == 256
        assert all(p.checksum_ok for p in packets)

    def test_figure3_plan(self):
        network = _network(plan=figure3_plan(), seed=3)
        rng = random.Random(4)
        packets = [
            network.send(rng.randrange(64), rng.randrange(64), [7] * 20)
            for _ in range(30)
        ]
        assert network.run_until_quiet(max_cycles=100000)
        assert all(p.checksum_ok for p in packets)

    def test_payload_integrity(self):
        network = _network(seed=5)
        payload = [v & 0xF for v in range(50)]
        network.send(0, 9, payload)
        assert network.run_until_quiet(max_cycles=10000)
        # Checksum verified at the sink; zero failures means the exact
        # payload arrived.
        assert network.checksum_failures == 0
        assert network.sinks[9].received == 1


class TestBlockingBehaviour:
    def test_contention_absorbs_in_buffers_no_loss(self):
        """Unlike METRO, a blocked wormhole packet waits in buffers:
        everyone to one destination still delivers, with zero retries
        (there is no retry machinery at all)."""
        network = _network(seed=6)
        packets = [
            network.send(src, 0, [src] * 6) for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=50000)
        assert len(network.delivered) == 15
        assert all(p.checksum_ok for p in packets)

    def test_backpressure_counts_buffered_flits(self):
        network = _network(seed=7)
        for src in range(1, 16):
            network.send(src, 0, [src] * 20)
        network.run(30)
        buffered = sum(
            router.buffered_flits()
            for stage in network.routers
            for router in stage
        )
        assert buffered > 0  # contention is sitting in buffers

    def test_no_flit_ever_overflows(self):
        """The credit protocol must hold under sustained load (the
        router asserts on overflow, so surviving the run is the test)."""
        network = _network(seed=8, buffer_depth=2)
        rng = random.Random(9)
        for _ in range(120):
            network.send(rng.randrange(16), rng.randrange(16), [1, 2, 3])
        assert network.run_until_quiet(max_cycles=200000)
        assert len(network.delivered) == 120


class TestLatencyCharacter:
    def test_unloaded_latency_same_regime_as_metro(self):
        """Same topology, same 20-byte payload: wormhole unloaded
        latency lands in the same few-tens-of-cycles regime (no acks,
        so somewhat lower than METRO's round-trip figure)."""
        network = _network(plan=figure3_plan(), seed=10)
        packet = network.send(5, 40, [3] * 20)
        assert network.run_until_quiet(max_cycles=5000)
        assert 20 <= packet.total_latency <= 50

    def test_deeper_buffers_do_not_hurt_unloaded(self):
        shallow = _network(seed=11, buffer_depth=2)
        deep = _network(seed=11, buffer_depth=16)
        a = shallow.send(1, 9, [5] * 10)
        b = deep.send(1, 9, [5] * 10)
        shallow.run_until_quiet(max_cycles=5000)
        deep.run_until_quiet(max_cycles=5000)
        assert a.total_latency == b.total_latency


class TestAdversarialWormhole:
    def test_tornado_pattern_sustained(self):
        """Structured permutation under sustained load: credits must
        hold, everything delivers, nothing deadlocks (the forward-only
        multistage channel graph is acyclic)."""
        from repro.network.topology import figure3_plan

        network = _network(plan=figure3_plan(), seed=12, buffer_depth=3)
        n = 64
        for round_number in range(4):
            for src in range(n):
                dest = (src + n // 2 - 1) % n  # tornado
                if dest != src:
                    network.send(src, dest, [round_number] * 10)
        assert network.run_until_quiet(max_cycles=400000)
        assert len(network.delivered) == 4 * 64
        assert network.checksum_failures == 0

    def test_single_flit_packets(self):
        network = _network(seed=13)
        packets = [network.send(src, (src + 1) % 16, []) for src in range(16)]
        assert network.run_until_quiet(max_cycles=20000)
        assert all(p.checksum_ok for p in packets)

    def test_interleaved_sizes(self):
        import random as _random

        network = _network(seed=14)
        rng = _random.Random(15)
        packets = []
        for _ in range(40):
            size = rng.choice([0, 1, 5, 30])
            packets.append(
                network.send(rng.randrange(16), rng.randrange(16),
                             [rng.getrandbits(4) for _ in range(size)])
            )
        assert network.run_until_quiet(max_cycles=200000)
        assert all(p.checksum_ok for p in packets)


class TestStoreAndForward:
    """Section 2's long-haul discipline: whole-packet buffering."""

    def _latency(self, store_and_forward, payload_words=10, buffer_depth=16):
        network = _network(
            plan=figure3_plan(), seed=20, buffer_depth=buffer_depth,
            store_and_forward=store_and_forward,
        )
        packet = network.send(3, 44, [5] * payload_words)
        assert network.run_until_quiet(max_cycles=20000)
        assert packet.checksum_ok
        return packet.total_latency

    def test_delivers_correctly(self):
        network = _network(seed=21, buffer_depth=16, store_and_forward=True)
        packets = [
            network.send(src, (src + 5) % 16, [src] * 6) for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=100000)
        assert all(p.checksum_ok for p in packets)

    def test_pays_per_hop_serialization(self):
        """Store-and-forward re-serializes the packet at every hop:
        latency ~ hops x packet length, vs hops + length for wormhole.
        For a 12-flit packet over 3 stages the gap is ~2 packet times."""
        cut_through = self._latency(False)
        stored = self._latency(True)
        assert stored > cut_through + 2 * 10
        # And the gap grows with packet size (the Section 2 point about
        # why long-haul disciplines hurt short-haul latency).
        cut_long = self._latency(False, payload_words=24, buffer_depth=32)
        stored_long = self._latency(True, payload_words=24, buffer_depth=32)
        assert (stored_long - cut_long) > (stored - cut_through)

    def test_oversized_packet_asserts(self):
        network = _network(seed=22, buffer_depth=4, store_and_forward=True)
        network.send(0, 9, [1] * 10)  # 12 flits > 4-deep buffer
        with pytest.raises(AssertionError):
            network.run(200)


class TestConservationFuzz:
    def test_flit_conservation_under_random_traffic(self):
        """Every injected flit is either delivered or still buffered at
        any observation instant; at quiescence everything delivered."""
        import random as _random

        network = _network(seed=30, buffer_depth=3)
        rng = _random.Random(31)
        sent_flits = 0
        for _ in range(60):
            size = rng.randrange(0, 8)
            network.send(rng.randrange(16), rng.randrange(16),
                         [rng.getrandbits(4) for _ in range(size)])
            sent_flits += size + 2  # head + payload + tail
            network.run(rng.randrange(0, 6))
            # Invariant at an arbitrary instant: nothing overflowed
            # (routers assert), buffers bounded by depth.
            for stage in network.routers:
                for router in stage:
                    for port in router._inputs:
                        assert len(port.fifo) <= router.buffer_depth
        assert network.run_until_quiet(max_cycles=300000)
        delivered_flits = sum(
            len(p.payload) + 2 for p in network.delivered
        )
        assert delivered_flits == sent_flits
        assert all(
            router.buffered_flits() == 0
            for stage in network.routers
            for router in stage
        )
