"""Latency decomposition and the short-haul condition."""

import pytest

from repro.harness.breakdown import measure_breakdown
from repro.harness.load_sweep import figure3_network
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def test_phases_sum_to_total():
    breakdown = measure_breakdown(figure3_network, message_words=20, samples=6, seed=1)
    reconstructed = (
        breakdown.serialization + breakdown.transit + breakdown.reply
    )
    assert reconstructed == pytest.approx(breakdown.total, abs=0.01)


def test_twenty_byte_message_is_injection_dominated():
    """The short-haul premise (Section 2) holds on the Figure 3
    network: 23 serialization cycles vs ~7 transit cycles."""
    breakdown = measure_breakdown(figure3_network, message_words=20, samples=6, seed=2)
    assert breakdown.injection_dominates
    assert breakdown.serialization >= 2 * breakdown.transit


def test_tiny_message_is_transit_comparable():
    breakdown = measure_breakdown(figure3_network, message_words=1, samples=6, seed=3)
    # 4 stream words vs ~7 transit cycles: injection no longer dominates.
    assert not breakdown.injection_dominates


def test_transit_reflects_pipeline_depth():
    def deep_factory(seed):
        return build_network(figure1_plan(), seed=seed, link_delay=3)

    def shallow_factory(seed):
        return build_network(figure1_plan(), seed=seed, link_delay=1)

    deep = measure_breakdown(deep_factory, message_words=8, samples=5, seed=4)
    shallow = measure_breakdown(shallow_factory, message_words=8, samples=5, seed=4)
    # 4 wires x 2 extra registers each = 8 extra transit cycles.
    assert deep.transit - shallow.transit == pytest.approx(8, abs=1)
    assert deep.serialization == shallow.serialization


def test_breakdown_repr_and_dict():
    breakdown = measure_breakdown(figure3_network, message_words=4, samples=3, seed=5)
    data = breakdown.as_dict()
    assert set(data) == {
        "serialization_cycles",
        "transit_cycles",
        "reply_cycles",
        "total_cycles",
    }
    assert "LatencyBreakdown" in repr(breakdown)
