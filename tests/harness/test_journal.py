"""Run journal: durability, replay, resume, and the kill-resume proof."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.harness.chaosmonkey import (
    arm,
    corrupt_cache_entry,
    strike_counts,
    truncate_tail,
)
from repro.harness.journal import (
    JOURNAL_FORMAT,
    RunJournal,
    load_journal_state,
    read_journal,
    replay_journal,
    resume_sweep,
    validate_journal,
)
from repro.harness.parallel import (
    QuarantinedTrial,
    SweepInterrupted,
    TrialRunner,
    TrialSpec,
    is_quarantined,
    journal_trial_key,
    result_content_hash,
)


def _load_specs(n=3, backend=None):
    """Small, fast, *real* simulation trials (cacheable)."""
    specs = []
    for index in range(n):
        params = dict(
            rate=0.005 * (index + 1), warmup_cycles=100, measure_cycles=300
        )
        if backend is not None:
            params["backend"] = backend
        specs.append(
            TrialSpec(
                "repro.harness.load_sweep:run_load_point",
                params=params,
                seed=index,
                label="pt{}".format(index),
            )
        )
    return specs


def _echo_trial(value=0, seed=0):
    return (value, seed)


def _failing_trial(seed=0):
    raise RuntimeError("boom")


def _result_bytes(results):
    """Byte-exact serialization (JSON: pickle memoizes identity)."""
    return json.dumps(
        [
            [r.as_dict(), r._latencies.tolist(), r._attempts.tolist(),
             sorted(r.attempt_failures.items())]
            for r in results
        ],
        sort_keys=True,
    ).encode()


# ---------------------------------------------------------------------------
# Journal file format
# ---------------------------------------------------------------------------


def test_journal_header_and_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        journal.record("sweep.start", total=1, trials=[
            {"index": 0, "key": "k0", "label": "pt0", "seed": 0},
        ])
        journal.record("trial.done", index=0, key="k0", label="pt0",
                       source="executed", result_hash="abc")
    events = read_journal(str(path))
    assert validate_journal(events) == 3
    assert events[0]["event"] == "journal.start"
    assert events[0]["format"] == JOURNAL_FORMAT
    assert all("t" in event for event in events)
    # Closed journals drop further records instead of crashing.
    journal.record("sweep.end", total=1)
    assert len(read_journal(str(path))) == 3


def test_torn_tail_is_tolerated_and_trimmed_on_append(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        journal.record("trial.queued", index=0, key="k0", label="pt0")
        journal.record("trial.queued", index=1, key="k1", label="pt1")
    # Crash mid-append: the final record is torn.
    assert truncate_tail(str(path), 9) == 9
    events = read_journal(str(path))
    assert [e["event"] for e in events] == ["journal.start", "trial.queued"]
    # Appending after the crash must not glue onto the fragment.
    with RunJournal(path) as journal:
        journal.record("trial.queued", index=2, key="k2", label="pt2")
    events = read_journal(str(path))
    assert validate_journal(events) == 3
    assert [e.get("key") for e in events] == [None, "k0", "k2"]
    # The header was not rewritten on reopen.
    assert sum(1 for e in events if e["event"] == "journal.start") == 1


def test_validate_journal_rejects_malformed(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        validate_journal([])
    with pytest.raises(ValueError, match="journal.start"):
        validate_journal([{"event": "sweep.start", "total": 0, "trials": []}])
    with pytest.raises(ValueError, match="format"):
        validate_journal([{"event": "journal.start", "format": "bogus"}])
    header = {"event": "journal.start", "format": JOURNAL_FORMAT}
    with pytest.raises(ValueError, match="missing field"):
        validate_journal([header, {"event": "trial.done", "index": 0}])
    # Unknown kinds pass: the format is forward-extensible.
    assert validate_journal([header, {"event": "trial.custom"}]) == 2


def test_replay_journal_later_records_win():
    events = [
        {"event": "journal.start", "format": JOURNAL_FORMAT},
        {"event": "sweep.start", "total": 2, "trials": [
            {"index": 0, "key": "a", "label": "A", "seed": 1},
            {"index": 1, "key": "b", "label": "B", "seed": 2},
        ]},
        {"event": "trial.start", "index": 0, "key": "a", "label": "A",
         "attempt": 1},
        {"event": "trial.failed", "index": 0, "key": "a", "label": "A",
         "attempt": 1, "kind": "crash"},
        {"event": "trial.start", "index": 0, "key": "a", "label": "A",
         "attempt": 2},
        {"event": "trial.done", "index": 0, "key": "a", "label": "A",
         "source": "executed", "result_hash": "h"},
        {"event": "trial.start", "index": 1, "key": "b", "label": "B",
         "attempt": 1},
    ]
    state = replay_journal(events)
    assert state.done["a"]["result_hash"] == "h"
    assert state.attempts["a"] == 2
    assert "a" not in state.started      # finishing clears mid-flight
    assert state.started == {"b"}
    assert state.unfinished == ["b"]
    assert not state.completed
    state = replay_journal(
        events + [{"event": "sweep.interrupted", "signum": 15,
                   "signal": "SIGTERM"}]
    )
    assert state.interrupted == "SIGTERM"


# ---------------------------------------------------------------------------
# Runner integration
# ---------------------------------------------------------------------------


def test_runner_journals_full_sweep_lifecycle(tmp_path):
    path = tmp_path / "run.jsonl"
    runner = TrialRunner(cache_dir=str(tmp_path / "cache"), journal=str(path))
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v,
                  label="echo{}".format(v))
        for v in range(2)
    ]
    results = runner.run(specs)
    runner.journal.close()
    events = read_journal(str(path))
    validate_journal(events)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "journal.start"
    assert kinds[1] == "sweep.start"
    assert kinds.count("trial.queued") == 2
    assert kinds.count("trial.done") == 2
    assert kinds[-1] == "sweep.end"
    # The journaled content hash is the result's actual content hash.
    done = {e["key"]: e for e in events if e["event"] == "trial.done"}
    for spec, result in zip(specs, results):
        entry = done[journal_trial_key(spec)]
        assert entry["result_hash"] == result_content_hash(result)
        assert entry["source"] == "executed"
    state = load_journal_state(str(path))
    assert state.completed and not state.unfinished


def test_resume_sweep_is_byte_identical_to_uninterrupted(tmp_path):
    specs = _load_specs(3)
    cache_dir = str(tmp_path / "cache")
    path = str(tmp_path / "run.jsonl")
    # Leg 1 dies after finishing only the first two trials.
    leg1 = TrialRunner(cache_dir=cache_dir, journal=path)
    leg1.run(specs[:2])
    leg1.journal.close()
    # Leg 2 resumes the full sweep against the same journal.
    sources = []
    leg2 = TrialRunner(
        cache_dir=cache_dir, journal=path,
        progress=lambda e: sources.append(e.source),
    )
    resumed = resume_sweep(path, specs, leg2)
    leg2.journal.close()
    assert sources == ["resumed", "resumed", "executed"]
    assert leg2.stats.executed == 1
    control = TrialRunner(cache_dir=str(tmp_path / "control")).run(specs)
    assert _result_bytes(resumed) == _result_bytes(control)
    # The resumed leg extended the same journal, which now completes.
    state = load_journal_state(path)
    assert state.completed and len(state.done) == 3


def test_resume_rejects_unrelated_journal(tmp_path):
    path = str(tmp_path / "run.jsonl")
    leg1 = TrialRunner(cache_dir=str(tmp_path / "cache"), journal=path)
    leg1.run(_load_specs(2))
    leg1.journal.close()
    other = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=9), seed=9)
    ]
    with pytest.raises(ValueError, match="does not describe this sweep"):
        resume_sweep(path, other, TrialRunner())


def test_resume_refuses_corrupt_cache_entry_and_recomputes(tmp_path):
    specs = _load_specs(2)
    cache_dir = str(tmp_path / "cache")
    path = str(tmp_path / "run.jsonl")
    leg1 = TrialRunner(cache_dir=cache_dir, journal=path)
    control = leg1.run(specs)
    leg1.journal.close()
    # A worker died mid-write / the disk lied: flip a cached byte.
    assert corrupt_cache_entry(leg1.cache, specs[0].fingerprint())
    leg2 = TrialRunner(cache_dir=cache_dir, journal=path)
    resumed = resume_sweep(path, specs, leg2)
    leg2.journal.close()
    # The damaged entry was not trusted; the result is still right.
    assert leg2.stats.executed == 1
    assert _result_bytes(resumed) == _result_bytes(control)


def test_quarantine_report_carries_over_on_resume(tmp_path):
    cache_dir = str(tmp_path / "cache")
    path = str(tmp_path / "run.jsonl")
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=1), seed=1,
                  label="ok"),
        TrialSpec(__name__ + ":_failing_trial", params={}, seed=2,
                  label="poison"),
    ]
    leg1 = TrialRunner(cache_dir=cache_dir, journal=path, retries=2,
                       on_exhausted="quarantine")
    results = leg1.run(specs)
    leg1.journal.close()
    assert is_quarantined(results[1])
    # Resume does not grant the poison trial a fresh attempt budget.
    leg2 = TrialRunner(cache_dir=cache_dir, journal=path)
    resumed = resume_sweep(path, specs, leg2)
    leg2.journal.close()
    assert leg2.stats.executed == 0
    assert resumed[0] == (1, 1)
    report = resumed[1]
    assert isinstance(report, QuarantinedTrial)
    assert report.label == "poison"
    assert report.attempts == 2
    assert [f["kind"] for f in report.failures] == ["error", "error"]


def test_sigterm_mid_sweep_flushes_journal_and_resumes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    path = str(tmp_path / "run.jsonl")
    specs = _load_specs(3)

    def interrupt_after_first(event):
        if event.index == 0:
            signal.raise_signal(signal.SIGTERM)

    leg1 = TrialRunner(cache_dir=cache_dir, journal=path,
                       progress=interrupt_after_first)
    with pytest.raises(SweepInterrupted):
        leg1.run(specs)
    state = load_journal_state(path)
    assert state.interrupted == "SIGTERM"
    assert len(state.done) >= 1 and state.unfinished
    leg2 = TrialRunner(cache_dir=cache_dir, journal=path)
    resumed = resume_sweep(path, specs, leg2)
    leg2.journal.close()
    control = TrialRunner(cache_dir=str(tmp_path / "control")).run(specs)
    assert _result_bytes(resumed) == _result_bytes(control)


# ---------------------------------------------------------------------------
# The kill-resume proof (acceptance criterion)
# ---------------------------------------------------------------------------

_VICTIM_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.harness.parallel import TrialRunner, TrialSpec

    cache_dir, journal, backend = sys.argv[1], sys.argv[2], sys.argv[3]
    specs = []
    for index in range(3):
        params = dict(rate=0.005 * (index + 1), warmup_cycles=100,
                      measure_cycles=300)
        if backend != "none":
            params["backend"] = backend
        specs.append(TrialSpec("repro.harness.load_sweep:run_load_point",
                               params=params, seed=index,
                               label="pt{}".format(index)))
    runner = TrialRunner(cache_dir=cache_dir, journal=journal)
    runner.run(specs)
    print("SURVIVED")  # the chaosmonkey must never let us get here
    """
)


@pytest.mark.parametrize("backend", [None, "events"],
                         ids=["dense", "events"])
def test_kill_resume_byte_identical(tmp_path, backend):
    """SIGKILL a sweep mid-run, resume from the journal, match control.

    The chaosmonkey SIGKILLs the victim process at the start of its
    second trial, so the journal records one finished trial and one
    mid-flight — the crash shape a real OOM kill leaves behind.
    """
    cache_dir = str(tmp_path / "cache")
    journal = str(tmp_path / "run.jsonl")
    env = dict(os.environ)
    env.update(arm(str(tmp_path / "ledger"), target="pt1", strikes=1))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"),
                    env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _VICTIM_SCRIPT, cache_dir, journal,
         backend or "none"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "SURVIVED" not in proc.stdout
    assert strike_counts(str(tmp_path / "ledger")) == {"pt1": 1}

    state = load_journal_state(journal)
    assert len(state.done) == 1
    assert state.started and not state.completed

    specs = _load_specs(3, backend=backend)
    resumed_runner = TrialRunner(
        cache_dir=cache_dir, journal=journal, resume_from=journal
    )
    resumed = resumed_runner.run(specs)
    resumed_runner.journal.close()
    assert resumed_runner.stats.cached == 1     # pt0 served, not re-run
    assert resumed_runner.stats.executed == 2   # pt1 (killed) + pt2

    control = TrialRunner(cache_dir=str(tmp_path / "control")).run(specs)
    assert _result_bytes(resumed) == _result_bytes(control)
    state = load_journal_state(journal)
    assert state.completed and not state.unfinished
