"""Regression: Section 2's short-haul condition across Table 3.

``LatencyBreakdown.injection_dominates`` encodes the paper's premise
that for short-haul networks "the time to inject a message is long
compared to the transit latency".  These tests pin that premise
analytically for every Table 3 implementation — serialization time is
message bits times ``t_bit``, transit is ``stages * t_stg`` — so a
future change to the equations or the breakdown predicate that flips a
row fails loudly.
"""

import pytest

from repro.harness.breakdown import LatencyBreakdown
from repro.latency_model import equations as EQ
from repro.latency_model.implementations import rn1, table3_implementations


def analytic_breakdown(impl, message_bits=EQ.MESSAGE_BITS_20_BYTES):
    """A Table 3 row's breakdown for a message of ``message_bits``."""
    serialization = (message_bits + impl.hbits()) * impl.t_bit()
    transit = impl.stages * impl.t_stg()
    return LatencyBreakdown(
        serialization=serialization,
        transit=transit,
        reply=0.0,
        total=serialization + transit,
    )


@pytest.mark.parametrize(
    "impl", table3_implementations(), ids=lambda i: "{}-{}".format(
        i.technology.replace(" ", ""), i.name.replace(" ", "_"))
)
def test_20_byte_messages_injection_dominates_everywhere(impl):
    """At the paper's reference size every implementation — gate array
    through 4-cascade full custom — is injection-dominated."""
    assert analytic_breakdown(impl).injection_dominates


def test_fastest_cascade_flips_for_short_messages():
    """The premise is not vacuous: the row with the widest effective
    datapath (i=o=8 hw=2 4-cascade full custom) becomes transit-
    dominated once the message shrinks enough."""
    fastest = table3_implementations()[-1]
    assert fastest.c == 4
    assert analytic_breakdown(fastest).injection_dominates
    assert not analytic_breakdown(fastest, message_bits=32).injection_dominates


def test_flip_point_tracks_the_stage_transit():
    """injection >= transit exactly when total bits x t_bit crosses
    stages x t_stg; check the boundary bit count on the fastest row."""
    fastest = table3_implementations()[-1]
    transit = fastest.stages * fastest.t_stg()
    boundary_bits = int(transit / fastest.t_bit())  # 128 bits
    at = analytic_breakdown(fastest, message_bits=boundary_bits - fastest.hbits())
    below = analytic_breakdown(
        fastest, message_bits=boundary_bits - fastest.hbits() - 1
    )
    assert at.injection_dominates
    assert not below.injection_dominates


def test_rn1_ancestor_still_injection_dominated():
    """Even with the unpipelined interconnect of RN1 (Section 6.1) the
    premise holds at 20 bytes — the lesson METRO drew was about clock
    rate, not about transit dominating."""
    assert analytic_breakdown(rn1()).injection_dominates


def test_breakdown_dict_reports_all_phases():
    breakdown = analytic_breakdown(table3_implementations()[0])
    data = breakdown.as_dict()
    assert set(data) == {
        "serialization_cycles",
        "transit_cycles",
        "reply_cycles",
        "total_cycles",
    }
    assert data["total_cycles"] == pytest.approx(
        data["serialization_cycles"] + data["transit_cycles"]
        + data["reply_cycles"]
    )
