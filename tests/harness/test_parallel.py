"""The parallel trial runner: equivalence, caching, specs, timeouts."""

import os
import signal
import sys
import time

import pytest

from repro.core.random_source import SeedStream, derive_seed
from repro.harness.fault_sweep import fault_degradation_sweep
from repro.harness.load_sweep import figure1_network, figure3_sweep, load_trial_specs
from repro.harness.parallel import (
    CACHE_MISS,
    TrialCache,
    TrialRunner,
    TrialSpec,
    TrialTimeoutError,
    repro_code_version,
    run_trials,
)
from repro.harness.reporting import format_trial_event
from repro.harness.saturation import find_saturation

SWEEP_KW = dict(
    network_factory=figure1_network,
    message_words=6,
    warmup_cycles=150,
    measure_cycles=500,
)


def _result_bytes(results):
    """Byte-exact serialization of a sweep's full statistics.

    JSON rather than pickle: pickle's memo encodes object *identity*
    (strings shared in-process but distinct after a worker round-trip),
    which would flag equal values as different bytes.
    """
    import json

    return json.dumps(
        [
            [r.as_dict(), r._latencies.tolist(), r._attempts.tolist(),
             sorted(r.attempt_failures.items())]
            for r in results
        ],
        sort_keys=True,
    ).encode()


def _sleepy_trial(seconds, seed=0):
    time.sleep(seconds)
    return seed


def _echo_trial(value=0, seed=0):
    return (value, seed)


# ---------------------------------------------------------------------------
# Seed streams
# ---------------------------------------------------------------------------


def test_derive_seed_is_deterministic_and_path_sensitive():
    assert derive_seed(3, "load", 0.04) == derive_seed(3, "load", 0.04)
    assert derive_seed(3, "load", 0.04) != derive_seed(4, "load", 0.04)
    assert derive_seed(3, "load", 0.04) != derive_seed(3, "load", 0.08)
    assert derive_seed(3, "load", 0.04) != derive_seed(3, "fault", 0.04)


def test_derive_seed_position_independent():
    # A trial's seed does not depend on what else is in the sweep.
    sparse = load_trial_specs(rates=(0.04,), seed=3)
    dense = load_trial_specs(rates=(0.002, 0.04, 0.32), seed=3)
    assert sparse[0].seed == dense[1].seed


def test_seed_stream_children():
    stream = SeedStream(7)
    assert stream.seed("a", 1) == SeedStream(7).seed("a", 1)
    child = stream.child("a")
    assert child.root == stream.seed("a")
    assert stream.stream("x").bits(16) == stream.stream("x").bits(16)


# ---------------------------------------------------------------------------
# Trial specs
# ---------------------------------------------------------------------------


def test_spec_fingerprint_stable_and_parameter_sensitive():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    same = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    assert spec.fingerprint() == same.fingerprint()
    other_rate = TrialSpec("repro.harness.load_sweep:run_load_point",
                           params=dict(rate=0.02), seed=5)
    other_seed = TrialSpec("repro.harness.load_sweep:run_load_point",
                           params=dict(rate=0.01), seed=6)
    assert spec.fingerprint() != other_rate.fingerprint()
    assert spec.fingerprint() != other_seed.fingerprint()


def test_spec_fingerprint_distinguishes_engine_backends():
    """A cached reference-backend trial must never satisfy an events
    request (or vice versa) — and the default sweep's cache entries
    must keep their pre-backend identity, so the knob only enters the
    params when overridden."""
    from repro.harness.load_sweep import load_trial_specs

    default, = load_trial_specs(rates=(0.01,), seed=5)
    events, = load_trial_specs(rates=(0.01,), seed=5, backend="events")
    assert default.seed == events.seed
    # The default sweep's params — and so its cache identity — are
    # unchanged from before the backend knob existed...
    assert "backend" not in default.params
    # ...while an events sweep of the same seed hashes differently.
    assert events.params["backend"] == "events"
    assert default.fingerprint() != events.fingerprint()


def test_spec_fingerprint_includes_code_version():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    assert spec.fingerprint(code_version="a") != spec.fingerprint(code_version="b")


def test_module_level_callables_are_cacheable_lambdas_are_not():
    good = TrialSpec("repro.harness.batch:run_grid_trial",
                     params=dict(factory=figure1_network, rate=0.01))
    assert good.cacheable()
    bad = TrialSpec("repro.harness.batch:run_grid_trial",
                    params=dict(factory=lambda seed: None, rate=0.01))
    assert not bad.cacheable()


def test_code_version_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
    assert repro_code_version() == "pinned"
    monkeypatch.delenv("REPRO_CODE_VERSION")
    fingerprint = repro_code_version()
    assert len(fingerprint) == 64 and fingerprint != "pinned"


def test_string_runner_resolves():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point")
    from repro.harness.load_sweep import run_load_point

    assert spec.resolve_runner() is run_load_point
    with pytest.raises(ValueError):
        TrialSpec("no-colon-here").resolve_runner()


# ---------------------------------------------------------------------------
# Serial vs parallel equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_load_sweep_parallel_matches_serial_byte_identical():
    kw = dict(rates=(0.01, 0.03, 0.06), seed=9, **SWEEP_KW)
    serial = figure3_sweep(workers=1, **kw)
    parallel = figure3_sweep(workers=4, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_fault_sweep_parallel_matches_serial():
    kw = dict(fault_levels=((0, 0), (2, 0)), rate=0.02, seed=5, **SWEEP_KW)
    serial = fault_degradation_sweep(workers=1, **kw)
    parallel = fault_degradation_sweep(workers=2, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_saturation_parallel_matches_serial():
    kw = dict(
        network_factory=figure1_network,
        start_rate=0.02,
        growth=3.0,
        max_steps=4,
        seed=2,
        message_words=8,
        warmup_cycles=200,
        measure_cycles=800,
    )
    sat_serial, serial = find_saturation(workers=1, **kw)
    sat_parallel, parallel = find_saturation(workers=2, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)
    assert sat_serial.label == sat_parallel.label


@pytest.mark.slow
def test_large_sweep_parallel_matches_serial_byte_identical():
    """Scaled-up equivalence check; deselected by default (-m 'not slow')."""
    kw = dict(
        rates=(0.005, 0.01, 0.02, 0.04, 0.08, 0.16),
        seed=3,
        network_factory=figure1_network,
        message_words=8,
        warmup_cycles=500,
        measure_cycles=2000,
    )
    serial = figure3_sweep(workers=1, **kw)
    parallel = figure3_sweep(workers=4, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_sweep_results_unchanged_by_rerun():
    kw = dict(rates=(0.02,), seed=11, **SWEEP_KW)
    assert _result_bytes(figure3_sweep(**kw)) == _result_bytes(figure3_sweep(**kw))


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


def test_repeated_sweep_hits_cache(tmp_path):
    kw = dict(rates=(0.01, 0.04), seed=9, **SWEEP_KW)
    first = TrialRunner(workers=1, cache_dir=str(tmp_path))
    baseline = figure3_sweep(runner=first, **kw)
    assert first.stats.executed == 2
    assert first.stats.cached == 0

    second = TrialRunner(workers=1, cache_dir=str(tmp_path))
    replay = figure3_sweep(runner=second, **kw)
    assert second.stats.executed == 0  # nothing recomputed
    assert second.stats.cached == 2
    assert _result_bytes(baseline) == _result_bytes(replay)


def test_cache_distinguishes_seeds_and_parameters(tmp_path):
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    figure3_sweep(runner=runner, rates=(0.01,), seed=9, **SWEEP_KW)
    figure3_sweep(runner=runner, rates=(0.01,), seed=10, **SWEEP_KW)
    figure3_sweep(runner=runner, rates=(0.02,), seed=9, **SWEEP_KW)
    assert runner.stats.executed == 3
    assert runner.stats.cached == 0


def test_parallel_run_populates_and_uses_cache(tmp_path):
    kw = dict(rates=(0.01, 0.04), seed=9, **SWEEP_KW)
    first = TrialRunner(workers=2, cache_dir=str(tmp_path))
    figure3_sweep(runner=first, **kw)
    assert first.stats.executed == 2

    second = TrialRunner(workers=2, cache_dir=str(tmp_path))
    second_results = figure3_sweep(runner=second, **kw)
    assert second.stats.executed == 0
    assert second.stats.cached == 2
    assert len(second_results) == 2


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    cache = TrialCache(str(tmp_path))
    spec = TrialSpec(__name__ + ":_echo_trial", params=dict(value=1), seed=2)
    key = spec.fingerprint()
    cache.put(key, "good")
    assert cache.get(key) == "good"
    with open(cache._path(key), "wb") as handle:
        handle.write(b"\x80garbage")
    assert cache.get(key) is CACHE_MISS
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    assert runner.run([spec]) == [(1, 2)]
    assert runner.stats.executed == 1


def test_uncacheable_specs_bypass_cache(tmp_path):
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    spec = TrialSpec(lambda seed: seed + 1, seed=1)
    assert runner.run([spec]) == [2]
    assert runner.run([spec]) == [2]
    assert runner.stats.executed == 2  # never cached
    assert len(runner.cache) == 0


# ---------------------------------------------------------------------------
# Runner mechanics
# ---------------------------------------------------------------------------


def test_results_preserve_spec_order():
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(6)
    ]
    assert run_trials(specs, workers=3) == [(v, v) for v in range(6)]


def test_progress_events_fire_in_order(tmp_path):
    events = []
    runner = TrialRunner(
        workers=1, cache_dir=str(tmp_path), progress=events.append
    )
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(3)
    ]
    runner.run(specs)
    assert [e.index for e in events] == [0, 1, 2]
    assert all(e.source == "executed" for e in events)
    runner.run(specs)
    cached = events[3:]
    assert all(e.source == "cache" and e.cached for e in cached)
    line = format_trial_event(events[0])
    assert "[1/3]" in line and "s" in line
    assert "cached" in format_trial_event(cached[0])


def test_unpicklable_spec_raises_clear_error_on_pool():
    runner = TrialRunner(workers=2)
    spec = TrialSpec(lambda seed: seed, seed=0, label="anonymous")
    with pytest.raises(ValueError, match="not picklable"):
        runner.run([spec])


def test_pool_trial_timeout_raises_instead_of_hanging():
    runner = TrialRunner(workers=2, trial_timeout=0.25)
    spec = TrialSpec(__name__ + ":_sleepy_trial", params=dict(seconds=30),
                     label="sleeper")
    start = time.monotonic()
    with pytest.raises(TrialTimeoutError, match="sleeper"):
        runner.run([spec])
    assert time.monotonic() - start < 20  # pool terminated, not drained


def test_worker_exception_propagates():
    runner = TrialRunner(workers=2)
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate="not-a-rate"), seed=0)
    with pytest.raises(Exception):
        runner.run([spec])


def _heartbeating_sleepy_trial(seconds, seed=0):
    from repro.telemetry.watchdog import (
        heartbeat_path_from_env,
        write_heartbeat,
    )

    path = heartbeat_path_from_env()
    if path:
        write_heartbeat(path, cycle=4242, delivered=17)
    time.sleep(seconds)
    return seed


def test_trial_event_duration_defaults_to_seconds():
    from repro.harness.parallel import TrialEvent

    event = TrialEvent(0, 1, "t", 2.5, "executed")
    assert event.duration == 2.5
    assert not event.timed_out
    timed = TrialEvent(0, 1, "t", 1.0, "timeout", duration=3.0)
    assert timed.timed_out and timed.duration == 3.0


def test_timeout_logs_warning_and_surfaces_heartbeat(tmp_path, caplog):
    events = []
    runner = TrialRunner(
        workers=2,
        trial_timeout=1.5,
        heartbeat_dir=str(tmp_path),
        progress=events.append,
    )
    spec = TrialSpec(
        __name__ + ":_heartbeating_sleepy_trial",
        params=dict(seconds=30),
        label="sleeper",
    )
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        with pytest.raises(TrialTimeoutError) as excinfo:
            runner.run([spec])
    # The hung trial's last liveness heartbeat rides the exception...
    assert excinfo.value.heartbeat["cycle"] == 4242
    assert "cycle 4242" in str(excinfo.value)
    # ...is logged as a warning rather than vanishing silently...
    assert any("sleeper" in r.message for r in caplog.records)
    # ...and fires a progress event marked as the timeout it was.
    assert len(events) == 1
    assert events[0].timed_out
    assert events[0].heartbeat["cycle"] == 4242
    assert events[0].duration >= 1.5


def test_timeout_without_heartbeat_reports_none_recorded(caplog):
    runner = TrialRunner(workers=2, trial_timeout=0.25)
    spec = TrialSpec(__name__ + ":_sleepy_trial", params=dict(seconds=30),
                     label="sleeper")
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        with pytest.raises(TrialTimeoutError) as excinfo:
            runner.run([spec])
    assert excinfo.value.heartbeat is None
    assert "no heartbeat recorded" in str(excinfo.value)


def test_serial_events_carry_wall_durations(tmp_path):
    events = []
    runner = TrialRunner(workers=1, progress=events.append)
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(2)
    ]
    runner.run(specs)
    assert all(e.duration >= e.seconds for e in events)
    assert all(e.heartbeat is None for e in events)


# ---------------------------------------------------------------------------
# Supervision: retries, quarantine, worker recycling, pool shrink
# ---------------------------------------------------------------------------


def _crash_once_trial(seed=0):
    # Killed externally by the chaosmonkey on its first attempt.
    return ("survived", seed)


def test_trial_backoff_mirrors_retry_shapes():
    from repro.harness.parallel import TrialBackoff, _normalize_retries

    backoff = TrialBackoff(max_attempts=4, base=0.5, factor=2.0,
                           max_delay=1.5, jitter=False)
    assert [backoff.delay(a) for a in (1, 2, 3)] == [0.5, 1.0, 1.5]
    jittered = TrialBackoff(max_attempts=4, base=0.5, seed=1)
    assert 0.0 <= jittered.delay(1) <= 0.5
    assert _normalize_retries(None).max_attempts == 1
    assert _normalize_retries(3).max_attempts == 3
    assert _normalize_retries(backoff) is backoff


def test_timed_out_trial_recycles_worker_and_pool_completes(caplog):
    """Satellite fix: a hung trial must not occupy its worker forever.

    One trial hangs past the timeout on a 2-worker pool while four
    quick trials queue behind it.  If the timed-out worker were left
    occupied, the pool would finish on one worker (or not at all);
    recycling it keeps both lanes live and the sweep completes with
    the hung trial quarantined.
    """
    from repro.harness.parallel import TrialBackoff, is_quarantined

    runner = TrialRunner(
        workers=2, trial_timeout=0.8,
        retries=TrialBackoff(max_attempts=1, base=0.0),
        on_exhausted="quarantine",
    )
    specs = [TrialSpec(__name__ + ":_sleepy_trial", params=dict(seconds=30),
                       label="hung")]
    specs += [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v,
                  label="quick{}".format(v))
        for v in range(4)
    ]
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        results = runner.run(specs)
    assert is_quarantined(results[0])
    assert results[0].failures[0]["kind"] == "timeout"
    assert results[1:] == [(v, v) for v in range(4)]


def test_worker_killed_three_times_quarantines_and_sweep_completes(
    tmp_path, monkeypatch
):
    """Acceptance: 3x SIGKILL on one trial -> quarantine, sweep lives."""
    from repro.harness.chaosmonkey import arm
    from repro.harness.parallel import TrialBackoff, partition_quarantined

    for key, value in arm(str(tmp_path / "ledger"), target="victim",
                          strikes=3).items():
        monkeypatch.setenv(key, value)
    runner = TrialRunner(
        workers=2,
        retries=TrialBackoff(max_attempts=3, base=0.0, jitter=False),
        on_exhausted="quarantine",
    )
    specs = [TrialSpec(__name__ + ":_crash_once_trial", seed=7,
                       label="victim")]
    specs += [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v,
                  label="bystander{}".format(v))
        for v in range(3)
    ]
    results = runner.run(specs)
    ok, quarantined = partition_quarantined(results)
    assert ok == [(v, v) for v in range(3)]
    (report,) = quarantined
    assert report.label == "victim"
    assert report.attempts == 3
    assert [f["kind"] for f in report.failures] == ["crash"] * 3
    assert all(f["exitcode"] == -9 for f in report.failures)
    # The report is structured data: it round-trips and summarizes.
    from repro.harness.parallel import QuarantinedTrial
    from repro.harness.reporting import format_quarantine_report

    assert QuarantinedTrial.from_dict(report.as_dict()).label == "victim"
    assert "crash x3" in format_quarantine_report([report])


def test_crashed_worker_retries_to_success(tmp_path, monkeypatch):
    """A worker SIGKILLed once retries the trial and succeeds."""
    from repro.harness.chaosmonkey import arm
    from repro.harness.parallel import TrialBackoff

    for key, value in arm(str(tmp_path / "ledger"), target="victim",
                          strikes=1).items():
        monkeypatch.setenv(key, value)
    runner = TrialRunner(
        workers=2,
        retries=TrialBackoff(max_attempts=2, base=0.0, jitter=False),
    )
    results = runner.run(
        [TrialSpec(__name__ + ":_crash_once_trial", seed=7, label="victim")]
    )
    assert results == [("survived", 7)]


def test_pool_shrinks_when_respawn_fails(tmp_path, monkeypatch, caplog):
    """Graceful degradation: a dead worker that cannot be respawned
    shrinks the pool instead of wedging or crashing the sweep."""
    from repro.harness.chaosmonkey import arm
    from repro.harness.parallel import TrialBackoff

    for key, value in arm(str(tmp_path / "ledger"), target="victim",
                          strikes=1).items():
        monkeypatch.setenv(key, value)
    original = TrialRunner._spawn_worker
    spawned = []

    def rationed_spawn(self, context, result_queue):
        if len(spawned) >= 2:
            raise OSError("fork budget exhausted")
        spawned.append(True)
        return original(self, context, result_queue)

    monkeypatch.setattr(TrialRunner, "_spawn_worker", rationed_spawn)
    runner = TrialRunner(
        workers=2,
        retries=TrialBackoff(max_attempts=2, base=0.0, jitter=False),
    )
    specs = [TrialSpec(__name__ + ":_crash_once_trial", seed=7,
                       label="victim")]
    specs += [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v,
                  label="bystander{}".format(v))
        for v in range(3)
    ]
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        results = runner.run(specs)
    assert results[0] == ("survived", 7)
    assert results[1:] == [(v, v) for v in range(3)]
    assert any("pool shrinks" in r.message for r in caplog.records)


def test_corrupt_cache_entry_is_a_warned_miss(tmp_path, caplog):
    """Satellite fix: unreadable cached pickles never crash a sweep."""
    cache = TrialCache(str(tmp_path))
    cache.put("key", {"fine": True})
    assert cache.get("key") == {"fine": True}
    with open(cache._path("key"), "wb") as handle:
        handle.write(b"not a pickle at all")
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        assert cache.get("key") is CACHE_MISS
    assert any("corrupt" in r.message.lower() or "unreadable" in
               r.message.lower() for r in caplog.records)


def test_cache_writes_are_atomic(tmp_path):
    """No torn entry is ever visible under the final cache filename."""
    cache = TrialCache(str(tmp_path))
    cache.put("key", list(range(1000)))
    leftovers = [
        name
        for _root, _dirs, files in os.walk(str(tmp_path))
        for name in files
        if not name.endswith(".pkl")
    ]
    assert leftovers == []
    assert cache.get("key") == list(range(1000))


_ORPHAN_VICTIM = """
import sys

sys.path.insert(0, {src!r})
from repro.harness.parallel import TrialRunner, TrialSpec

specs = [
    TrialSpec(
        "repro.harness.load_sweep:run_load_point",
        params=dict(rate=0.01, warmup_cycles=200, measure_cycles=600),
        seed=i,
        label="pt{{}}".format(i),
    )
    for i in range(200)
]
TrialRunner(workers=2).run(specs)
"""


def _children_of(pid):
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open("/proc/{}/stat".format(entry)) as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
        except OSError:
            continue
        if int(fields[1]) == pid:  # field 4 of stat: ppid
            kids.append(int(entry))
    return kids


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="reads /proc")
def test_workers_exit_when_supervisor_is_sigkilled(tmp_path):
    """SIGKILLing the supervisor must not leak orphaned idle workers.

    Forked-later siblings hold the parent end of earlier workers'
    pipes, so EOF never reaches an orphan; the worker loop's getppid
    poll is what lets the pool die with its supervisor.
    """
    import subprocess

    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    victim = subprocess.Popen(
        [sys.executable, "-c", _ORPHAN_VICTIM.format(src=os.path.abspath(src))],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 30
        workers = []
        while time.time() < deadline and len(workers) < 2:
            workers = _children_of(victim.pid)
            time.sleep(0.1)
        assert len(workers) >= 2, "victim never spawned its pool"
        victim.kill()
        assert victim.wait(timeout=10) == -signal.SIGKILL
        # Orphans notice within ~1s (the conn.poll interval) once their
        # in-flight trial ends — the trials are short, so well inside
        # this deadline.
        deadline = time.time() + 30
        while time.time() < deadline:
            alive = [pid for pid in workers if os.path.exists(
                "/proc/{}".format(pid))]
            if not alive:
                return
            time.sleep(0.25)
        raise AssertionError(
            "orphaned workers survived the supervisor: {}".format(alive)
        )
    finally:
        if victim.poll() is None:
            victim.kill()
        for pid in _children_of(victim.pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
