"""The parallel trial runner: equivalence, caching, specs, timeouts."""

import time

import pytest

from repro.core.random_source import SeedStream, derive_seed
from repro.harness.fault_sweep import fault_degradation_sweep
from repro.harness.load_sweep import figure1_network, figure3_sweep, load_trial_specs
from repro.harness.parallel import (
    CACHE_MISS,
    TrialCache,
    TrialRunner,
    TrialSpec,
    TrialTimeoutError,
    repro_code_version,
    run_trials,
)
from repro.harness.reporting import format_trial_event
from repro.harness.saturation import find_saturation

SWEEP_KW = dict(
    network_factory=figure1_network,
    message_words=6,
    warmup_cycles=150,
    measure_cycles=500,
)


def _result_bytes(results):
    """Byte-exact serialization of a sweep's full statistics.

    JSON rather than pickle: pickle's memo encodes object *identity*
    (strings shared in-process but distinct after a worker round-trip),
    which would flag equal values as different bytes.
    """
    import json

    return json.dumps(
        [
            [r.as_dict(), r._latencies.tolist(), r._attempts.tolist(),
             sorted(r.attempt_failures.items())]
            for r in results
        ],
        sort_keys=True,
    ).encode()


def _sleepy_trial(seconds, seed=0):
    time.sleep(seconds)
    return seed


def _echo_trial(value=0, seed=0):
    return (value, seed)


# ---------------------------------------------------------------------------
# Seed streams
# ---------------------------------------------------------------------------


def test_derive_seed_is_deterministic_and_path_sensitive():
    assert derive_seed(3, "load", 0.04) == derive_seed(3, "load", 0.04)
    assert derive_seed(3, "load", 0.04) != derive_seed(4, "load", 0.04)
    assert derive_seed(3, "load", 0.04) != derive_seed(3, "load", 0.08)
    assert derive_seed(3, "load", 0.04) != derive_seed(3, "fault", 0.04)


def test_derive_seed_position_independent():
    # A trial's seed does not depend on what else is in the sweep.
    sparse = load_trial_specs(rates=(0.04,), seed=3)
    dense = load_trial_specs(rates=(0.002, 0.04, 0.32), seed=3)
    assert sparse[0].seed == dense[1].seed


def test_seed_stream_children():
    stream = SeedStream(7)
    assert stream.seed("a", 1) == SeedStream(7).seed("a", 1)
    child = stream.child("a")
    assert child.root == stream.seed("a")
    assert stream.stream("x").bits(16) == stream.stream("x").bits(16)


# ---------------------------------------------------------------------------
# Trial specs
# ---------------------------------------------------------------------------


def test_spec_fingerprint_stable_and_parameter_sensitive():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    same = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    assert spec.fingerprint() == same.fingerprint()
    other_rate = TrialSpec("repro.harness.load_sweep:run_load_point",
                           params=dict(rate=0.02), seed=5)
    other_seed = TrialSpec("repro.harness.load_sweep:run_load_point",
                           params=dict(rate=0.01), seed=6)
    assert spec.fingerprint() != other_rate.fingerprint()
    assert spec.fingerprint() != other_seed.fingerprint()


def test_spec_fingerprint_distinguishes_engine_backends():
    """A cached reference-backend trial must never satisfy an events
    request (or vice versa) — and the default sweep's cache entries
    must keep their pre-backend identity, so the knob only enters the
    params when overridden."""
    from repro.harness.load_sweep import load_trial_specs

    default, = load_trial_specs(rates=(0.01,), seed=5)
    events, = load_trial_specs(rates=(0.01,), seed=5, backend="events")
    assert default.seed == events.seed
    # The default sweep's params — and so its cache identity — are
    # unchanged from before the backend knob existed...
    assert "backend" not in default.params
    # ...while an events sweep of the same seed hashes differently.
    assert events.params["backend"] == "events"
    assert default.fingerprint() != events.fingerprint()


def test_spec_fingerprint_includes_code_version():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate=0.01), seed=5)
    assert spec.fingerprint(code_version="a") != spec.fingerprint(code_version="b")


def test_module_level_callables_are_cacheable_lambdas_are_not():
    good = TrialSpec("repro.harness.batch:run_grid_trial",
                     params=dict(factory=figure1_network, rate=0.01))
    assert good.cacheable()
    bad = TrialSpec("repro.harness.batch:run_grid_trial",
                    params=dict(factory=lambda seed: None, rate=0.01))
    assert not bad.cacheable()


def test_code_version_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
    assert repro_code_version() == "pinned"
    monkeypatch.delenv("REPRO_CODE_VERSION")
    fingerprint = repro_code_version()
    assert len(fingerprint) == 64 and fingerprint != "pinned"


def test_string_runner_resolves():
    spec = TrialSpec("repro.harness.load_sweep:run_load_point")
    from repro.harness.load_sweep import run_load_point

    assert spec.resolve_runner() is run_load_point
    with pytest.raises(ValueError):
        TrialSpec("no-colon-here").resolve_runner()


# ---------------------------------------------------------------------------
# Serial vs parallel equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_load_sweep_parallel_matches_serial_byte_identical():
    kw = dict(rates=(0.01, 0.03, 0.06), seed=9, **SWEEP_KW)
    serial = figure3_sweep(workers=1, **kw)
    parallel = figure3_sweep(workers=4, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_fault_sweep_parallel_matches_serial():
    kw = dict(fault_levels=((0, 0), (2, 0)), rate=0.02, seed=5, **SWEEP_KW)
    serial = fault_degradation_sweep(workers=1, **kw)
    parallel = fault_degradation_sweep(workers=2, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_saturation_parallel_matches_serial():
    kw = dict(
        network_factory=figure1_network,
        start_rate=0.02,
        growth=3.0,
        max_steps=4,
        seed=2,
        message_words=8,
        warmup_cycles=200,
        measure_cycles=800,
    )
    sat_serial, serial = find_saturation(workers=1, **kw)
    sat_parallel, parallel = find_saturation(workers=2, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)
    assert sat_serial.label == sat_parallel.label


@pytest.mark.slow
def test_large_sweep_parallel_matches_serial_byte_identical():
    """Scaled-up equivalence check; deselected by default (-m 'not slow')."""
    kw = dict(
        rates=(0.005, 0.01, 0.02, 0.04, 0.08, 0.16),
        seed=3,
        network_factory=figure1_network,
        message_words=8,
        warmup_cycles=500,
        measure_cycles=2000,
    )
    serial = figure3_sweep(workers=1, **kw)
    parallel = figure3_sweep(workers=4, **kw)
    assert _result_bytes(serial) == _result_bytes(parallel)


def test_sweep_results_unchanged_by_rerun():
    kw = dict(rates=(0.02,), seed=11, **SWEEP_KW)
    assert _result_bytes(figure3_sweep(**kw)) == _result_bytes(figure3_sweep(**kw))


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


def test_repeated_sweep_hits_cache(tmp_path):
    kw = dict(rates=(0.01, 0.04), seed=9, **SWEEP_KW)
    first = TrialRunner(workers=1, cache_dir=str(tmp_path))
    baseline = figure3_sweep(runner=first, **kw)
    assert first.stats.executed == 2
    assert first.stats.cached == 0

    second = TrialRunner(workers=1, cache_dir=str(tmp_path))
    replay = figure3_sweep(runner=second, **kw)
    assert second.stats.executed == 0  # nothing recomputed
    assert second.stats.cached == 2
    assert _result_bytes(baseline) == _result_bytes(replay)


def test_cache_distinguishes_seeds_and_parameters(tmp_path):
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    figure3_sweep(runner=runner, rates=(0.01,), seed=9, **SWEEP_KW)
    figure3_sweep(runner=runner, rates=(0.01,), seed=10, **SWEEP_KW)
    figure3_sweep(runner=runner, rates=(0.02,), seed=9, **SWEEP_KW)
    assert runner.stats.executed == 3
    assert runner.stats.cached == 0


def test_parallel_run_populates_and_uses_cache(tmp_path):
    kw = dict(rates=(0.01, 0.04), seed=9, **SWEEP_KW)
    first = TrialRunner(workers=2, cache_dir=str(tmp_path))
    figure3_sweep(runner=first, **kw)
    assert first.stats.executed == 2

    second = TrialRunner(workers=2, cache_dir=str(tmp_path))
    second_results = figure3_sweep(runner=second, **kw)
    assert second.stats.executed == 0
    assert second.stats.cached == 2
    assert len(second_results) == 2


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    cache = TrialCache(str(tmp_path))
    spec = TrialSpec(__name__ + ":_echo_trial", params=dict(value=1), seed=2)
    key = spec.fingerprint()
    cache.put(key, "good")
    assert cache.get(key) == "good"
    with open(cache._path(key), "wb") as handle:
        handle.write(b"\x80garbage")
    assert cache.get(key) is CACHE_MISS
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    assert runner.run([spec]) == [(1, 2)]
    assert runner.stats.executed == 1


def test_uncacheable_specs_bypass_cache(tmp_path):
    runner = TrialRunner(workers=1, cache_dir=str(tmp_path))
    spec = TrialSpec(lambda seed: seed + 1, seed=1)
    assert runner.run([spec]) == [2]
    assert runner.run([spec]) == [2]
    assert runner.stats.executed == 2  # never cached
    assert len(runner.cache) == 0


# ---------------------------------------------------------------------------
# Runner mechanics
# ---------------------------------------------------------------------------


def test_results_preserve_spec_order():
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(6)
    ]
    assert run_trials(specs, workers=3) == [(v, v) for v in range(6)]


def test_progress_events_fire_in_order(tmp_path):
    events = []
    runner = TrialRunner(
        workers=1, cache_dir=str(tmp_path), progress=events.append
    )
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(3)
    ]
    runner.run(specs)
    assert [e.index for e in events] == [0, 1, 2]
    assert all(e.source == "executed" for e in events)
    runner.run(specs)
    cached = events[3:]
    assert all(e.source == "cache" and e.cached for e in cached)
    line = format_trial_event(events[0])
    assert "[1/3]" in line and "s" in line
    assert "cached" in format_trial_event(cached[0])


def test_unpicklable_spec_raises_clear_error_on_pool():
    runner = TrialRunner(workers=2)
    spec = TrialSpec(lambda seed: seed, seed=0, label="anonymous")
    with pytest.raises(ValueError, match="not picklable"):
        runner.run([spec])


def test_pool_trial_timeout_raises_instead_of_hanging():
    runner = TrialRunner(workers=2, trial_timeout=0.25)
    spec = TrialSpec(__name__ + ":_sleepy_trial", params=dict(seconds=30),
                     label="sleeper")
    start = time.monotonic()
    with pytest.raises(TrialTimeoutError, match="sleeper"):
        runner.run([spec])
    assert time.monotonic() - start < 20  # pool terminated, not drained


def test_worker_exception_propagates():
    runner = TrialRunner(workers=2)
    spec = TrialSpec("repro.harness.load_sweep:run_load_point",
                     params=dict(rate="not-a-rate"), seed=0)
    with pytest.raises(Exception):
        runner.run([spec])


def _heartbeating_sleepy_trial(seconds, seed=0):
    from repro.telemetry.watchdog import (
        heartbeat_path_from_env,
        write_heartbeat,
    )

    path = heartbeat_path_from_env()
    if path:
        write_heartbeat(path, cycle=4242, delivered=17)
    time.sleep(seconds)
    return seed


def test_trial_event_duration_defaults_to_seconds():
    from repro.harness.parallel import TrialEvent

    event = TrialEvent(0, 1, "t", 2.5, "executed")
    assert event.duration == 2.5
    assert not event.timed_out
    timed = TrialEvent(0, 1, "t", 1.0, "timeout", duration=3.0)
    assert timed.timed_out and timed.duration == 3.0


def test_timeout_logs_warning_and_surfaces_heartbeat(tmp_path, caplog):
    events = []
    runner = TrialRunner(
        workers=2,
        trial_timeout=1.5,
        heartbeat_dir=str(tmp_path),
        progress=events.append,
    )
    spec = TrialSpec(
        __name__ + ":_heartbeating_sleepy_trial",
        params=dict(seconds=30),
        label="sleeper",
    )
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        with pytest.raises(TrialTimeoutError) as excinfo:
            runner.run([spec])
    # The hung trial's last liveness heartbeat rides the exception...
    assert excinfo.value.heartbeat["cycle"] == 4242
    assert "cycle 4242" in str(excinfo.value)
    # ...is logged as a warning rather than vanishing silently...
    assert any("sleeper" in r.message for r in caplog.records)
    # ...and fires a progress event marked as the timeout it was.
    assert len(events) == 1
    assert events[0].timed_out
    assert events[0].heartbeat["cycle"] == 4242
    assert events[0].duration >= 1.5


def test_timeout_without_heartbeat_reports_none_recorded(caplog):
    runner = TrialRunner(workers=2, trial_timeout=0.25)
    spec = TrialSpec(__name__ + ":_sleepy_trial", params=dict(seconds=30),
                     label="sleeper")
    with caplog.at_level("WARNING", logger="repro.harness.parallel"):
        with pytest.raises(TrialTimeoutError) as excinfo:
            runner.run([spec])
    assert excinfo.value.heartbeat is None
    assert "no heartbeat recorded" in str(excinfo.value)


def test_serial_events_carry_wall_durations(tmp_path):
    events = []
    runner = TrialRunner(workers=1, progress=events.append)
    specs = [
        TrialSpec(__name__ + ":_echo_trial", params=dict(value=v), seed=v)
        for v in range(2)
    ]
    runner.run(specs)
    assert all(e.duration >= e.seconds for e in events)
    assert all(e.heartbeat is None for e in events)
