"""Saturation search."""

from repro.harness.saturation import find_saturation
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _small_factory(seed=0):
    return build_network(figure1_plan(), seed=seed, fast_reclaim=True)


def test_finds_a_flattening_point():
    saturated, results = find_saturation(
        network_factory=_small_factory,
        start_rate=0.02,
        growth=3.0,
        max_steps=5,
        seed=2,
        message_words=8,
        warmup_cycles=300,
        measure_cycles=1200,
    )
    assert saturated in results
    assert len(results) >= 2
    assert saturated.delivered_load > 0
    # The search stopped because gains flattened (or budget ran out
    # while still growing) — either way loads are non-trivial.
    assert results[-1].delivered_load >= results[0].delivered_load * 0.8


def test_results_are_ordered_by_rate():
    _saturated, results = find_saturation(
        network_factory=_small_factory,
        start_rate=0.01,
        growth=4.0,
        max_steps=3,
        seed=3,
        message_words=8,
        warmup_cycles=200,
        measure_cycles=800,
    )
    labels = [r.label for r in results]
    assert labels == sorted(labels, key=lambda s: float(s.split("=")[1]))
