"""Batch experiment grids."""

import csv
import io

from repro.harness.batch import ExperimentGrid
from repro.harness.load_sweep import figure1_network
from repro.harness.parallel import TrialRunner
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _factories():
    return {
        "fast": lambda seed: build_network(
            figure1_plan(), seed=seed, fast_reclaim=True
        ),
        "detailed": lambda seed: build_network(
            figure1_plan(), seed=seed, fast_reclaim=False
        ),
    }


def _grid(**kwargs):
    defaults = dict(
        factories=_factories(),
        rates=(0.01, 0.05),
        seeds=(1, 2),
        message_words=6,
        warmup_cycles=200,
        measure_cycles=800,
    )
    defaults.update(kwargs)
    return ExperimentGrid(**defaults)


def test_grid_runs_full_cross_product():
    grid = _grid()
    cells = grid.run()
    assert len(cells) == 2 * 2  # variants x rates
    assert all(len(cell.results) == 2 for cell in cells)  # seeds


def test_progress_callback_sees_every_run():
    seen = []
    grid = _grid()
    grid.run(progress=lambda name, rate, seed, result: seen.append((name, rate, seed)))
    assert len(seen) == 2 * 2 * 2


def test_cell_aggregation():
    grid = _grid(seeds=(1, 2, 3))
    cells = grid.run()
    cell = cells[0]
    assert cell.mean("mean_latency") > 0
    assert cell.spread("mean_latency") >= 0


def test_csv_shape():
    grid = _grid()
    grid.run()
    text = grid.to_csv()
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][:3] == ["variant", "rate", "seeds"]
    assert len(rows) == 1 + 4
    assert all(row[2] == "2" for row in rows[1:])


def test_raw_csv_one_row_per_run(tmp_path):
    grid = _grid()
    grid.run()
    path = tmp_path / "raw.csv"
    grid.raw_csv(str(path))
    rows = list(csv.reader(open(str(path))))
    assert len(rows) == 1 + 8  # header + 2 variants x 2 rates x 2 seeds


def test_csv_written_to_file(tmp_path):
    grid = _grid(rates=(0.02,), seeds=(1,))
    grid.run()
    path = tmp_path / "agg.csv"
    text = grid.to_csv(str(path))
    on_disk = open(str(path), newline="").read()
    assert on_disk == text


def _picklable_grid(**kwargs):
    """A grid whose factories are module-level (pool/cache compatible)."""
    defaults = dict(
        factories={"figure1": figure1_network},
        rates=(0.01, 0.05),
        seeds=(1, 2),
        message_words=6,
        warmup_cycles=150,
        measure_cycles=500,
    )
    defaults.update(kwargs)
    return ExperimentGrid(**defaults)


def test_trial_specs_cover_cross_product():
    grid = _picklable_grid()
    specs = grid.trial_specs()
    assert len(specs) == 1 * 2 * 2  # variants x rates x seeds
    assert all(spec.cacheable() for spec in specs)
    assert len({spec.fingerprint() for spec in specs}) == len(specs)


def test_grid_parallel_matches_serial():
    serial = _picklable_grid().run(workers=1)
    parallel = _picklable_grid().run(workers=2)
    for cell_s, cell_p in zip(serial, parallel):
        assert cell_s.params == cell_p.params
        for r_s, r_p in zip(cell_s.results, cell_p.results):
            assert r_s.as_dict() == r_p.as_dict()


def test_grid_run_uses_cache(tmp_path):
    first = TrialRunner(workers=1, cache_dir=str(tmp_path))
    _picklable_grid().run(runner=first)
    assert first.stats.executed == 4
    second = TrialRunner(workers=1, cache_dir=str(tmp_path))
    cells = _picklable_grid().run(runner=second)
    assert second.stats.executed == 0
    assert second.stats.cached == 4
    assert len(cells) == 2
