"""Benchmark history tracking: records, baselines, regression gates."""

import json

import pytest

from repro.harness.benchtrack import (
    RECORD_FORMAT,
    append_record,
    check_history_dir,
    compare_latest,
    history_path,
    load_history,
    make_record,
    metric,
)


def _record(bench="demo", quick=True, **metrics):
    """A history record with higher-is-better portable metrics."""
    return make_record(
        bench,
        {name: metric(value, portable=True) for name, value in metrics.items()},
        quick=quick,
    )


class TestRecords:
    def test_make_record_carries_provenance(self):
        record = _record(speed=100.0)
        assert record["format"] == RECORD_FORMAT
        assert record["bench"] == "demo"
        assert record["quick"] is True
        assert record["timestamp"].endswith("Z")
        assert record["metrics"]["speed"]["value"] == 100.0
        # Run from the repo checkout, so provenance includes the SHA.
        assert make_record("demo", {}, cwd=".")["git"]

    def test_append_and_load_round_trip(self, tmp_path):
        history = str(tmp_path)
        for value in (100.0, 101.0):
            append_record(history, _record(speed=value))
        records = load_history(history_path(history, "demo"))
        assert [r["metrics"]["speed"]["value"] for r in records] == [
            100.0, 101.0,
        ]

    def test_load_tolerates_torn_final_line(self, tmp_path):
        history = str(tmp_path)
        append_record(history, _record(speed=100.0))
        path = history_path(history, "demo")
        with open(path, "a") as handle:
            handle.write('{"format": 1, "bench"')
        assert len(load_history(path)) == 1

    def test_load_raises_on_malformed_interior_line(self, tmp_path):
        path = str(tmp_path / "demo.jsonl")
        with open(path, "w") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps(_record(speed=1.0)) + "\n")
        with pytest.raises(ValueError, match="line 1"):
            load_history(path)


class TestCompareLatest:
    def test_2x_slowdown_is_flagged(self):
        records = [_record(speed=v) for v in (100.0, 102.0, 98.0, 50.0)]
        regressions, compared = compare_latest(records)
        assert compared == 1
        assert len(regressions) == 1
        found = regressions[0]
        assert found.bench == "demo"
        assert found.metric == "speed"
        assert found.change == pytest.approx(1.0, abs=0.1)
        assert "worse" in found.describe()

    def test_noise_within_threshold_is_tolerated(self):
        records = [_record(speed=v) for v in (100.0, 102.0, 98.0, 91.0)]
        regressions, compared = compare_latest(records)
        assert compared == 1
        assert regressions == []

    def test_lower_is_better_direction(self):
        records = []
        for value in (10.0, 10.2, 9.9, 25.0):
            records.append(
                make_record(
                    "demo", {"latency": metric(value, higher_is_better=False)}
                )
            )
        regressions, _ = compare_latest(records)
        assert len(regressions) == 1
        # ...and an improvement (drop) never fires.
        records[-1]["metrics"]["latency"]["value"] = 2.0
        assert compare_latest(records)[0] == []

    def test_median_baseline_shrugs_off_one_outlier(self):
        # One historically-broken run (speed=1) must not poison the
        # baseline: the median of (100, 1, 102) is still ~100.
        records = [_record(speed=v) for v in (100.0, 1.0, 102.0, 95.0)]
        regressions, compared = compare_latest(records)
        assert compared == 1
        assert regressions == []

    def test_insufficient_history_is_never_a_failure(self):
        records = [_record(speed=100.0), _record(speed=1.0)]
        regressions, compared = compare_latest(records)
        assert compared == 0
        assert regressions == []

    def test_quick_and_full_records_never_mix(self):
        records = [_record(speed=v, quick=False) for v in (100.0, 101.0)]
        # The newest run is quick; its only same-flag history is empty.
        records.append(_record(speed=1.0, quick=True))
        regressions, compared = compare_latest(records)
        assert compared == 0
        assert regressions == []

    def test_portable_only_skips_machine_local_metrics(self):
        records = []
        for value in (100.0, 101.0, 99.0, 50.0):
            records.append(
                make_record(
                    "demo",
                    {
                        "wall_rate": metric(value, portable=False),
                        "ratio": metric(2.0, portable=True),
                    },
                )
            )
        regressions, compared = compare_latest(records, portable_only=True)
        assert compared == 1  # only the ratio was baselined
        assert regressions == []
        regressions, compared = compare_latest(records, portable_only=False)
        assert compared == 2
        assert [r.metric for r in regressions] == ["wall_rate"]

    def test_window_limits_the_baseline(self):
        # Ancient fast records beyond the window must not count.
        records = [_record(speed=1000.0) for _ in range(5)]
        records += [_record(speed=v) for v in (100.0, 101.0, 99.0)]
        records.append(_record(speed=95.0))
        regressions, compared = compare_latest(records, window=3)
        assert compared == 1
        assert regressions == []

    def test_nonpositive_values_are_skipped(self):
        records = [_record(speed=v) for v in (0.0, 0.0, 0.0)]
        regressions, compared = compare_latest(records)
        assert regressions == []


class TestCheckHistoryDir:
    def test_reports_per_bench_and_collects_regressions(self, tmp_path):
        history = str(tmp_path)
        for value in (100.0, 101.0, 50.0):
            append_record(history, _record("slowbench", speed=value))
        for value in (10.0, 10.0, 10.1):
            append_record(history, _record("okbench", speed=value))
        append_record(history, _record("newbench", speed=5.0))
        regressions, lines = check_history_dir(history)
        assert [r.bench for r in regressions] == ["slowbench"]
        assert any(line.startswith("REGRESSION slowbench") for line in lines)
        assert any(line.startswith("okbench: ok") for line in lines)
        assert any("newbench: insufficient history" in line for line in lines)

    def test_bench_filter_and_missing_bench(self, tmp_path):
        history = str(tmp_path)
        for value in (100.0, 101.0, 50.0):
            append_record(history, _record("slowbench", speed=value))
        regressions, lines = check_history_dir(
            history, benches=["slowbench"]
        )
        assert len(regressions) == 1
        with pytest.raises(FileNotFoundError, match="nosuchbench"):
            check_history_dir(history, benches=["nosuchbench"])

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="history directory"):
            check_history_dir(str(tmp_path / "nope"))
