"""The chaos snapshot ring: periodic checkpoints, pruning, and resume
after a simulated host restart."""

import os

import pytest

from repro.harness.chaos import (
    chaos_trial_specs,
    resume_chaos_point,
    run_chaos_point,
)
from repro.sim.snapshot import MAGIC, SnapshotFormatError

# Small, fast soak: 6 windows of 200 cycles, ring every 2 windows.
SOAK_KW = dict(
    seed=3,
    n_windows=6,
    window_cycles=200,
    warmup_windows=2,
    rate=0.02,
    n_flaky_links=1,
    n_dead_routers=1,
    mtbf=400,
    mttr=200,
    max_attempts=30,
)


def _fingerprint(result):
    return {
        "windows": list(result.windows),
        "availability": result.availability,
        "undeliverable": result.undeliverable,
        "attempt_failures": dict(result.attempt_failures),
        "fault_events": list(result.fault_events),
        "mask_events": list(result.mask_events),
        "repairs": list(result.repairs),
        "evidence_count": result.evidence_count,
        "oracle_violations": result.oracle_violations,
    }


def _ring(tmp_path, **overrides):
    ring = str(tmp_path / "ring")
    kwargs = dict(SOAK_KW, snapshot_every=2, snapshot_dir=ring)
    kwargs.update(overrides)
    return ring, run_chaos_point(**kwargs)


def test_ring_writes_and_prunes_to_snapshot_keep(tmp_path):
    # Checkpoint every window so several ring entries are written
    # (repair servicing may advance the engine over a grid point), then
    # verify only the newest snapshot_keep survive.
    ring, _ = _ring(tmp_path, snapshot_every=1, snapshot_keep=2)
    names = sorted(os.listdir(ring))
    assert len(names) == 2, names
    assert all(
        n.startswith("chaos-") and n.endswith(".snap") for n in names
    )
    # Checkpoints land on the window grid, cycle-stamped in the name.
    cycles = [int(n[len("chaos-"):-len(".snap")]) for n in names]
    assert cycles == sorted(cycles)
    assert all(c % 200 == 0 for c in cycles)
    assert not [n for n in os.listdir(ring) if n.endswith(".tmp")]


def test_resume_matches_the_uninterrupted_soak(tmp_path):
    reference = run_chaos_point(**SOAK_KW)
    ring, ringed = _ring(tmp_path)
    # Checkpointing is observation: the ringed soak scores identically.
    assert _fingerprint(ringed) == _fingerprint(reference)
    # A "host restart": finish the soak from the newest ring entry, on
    # both the original and the other backend.
    resumed = resume_chaos_point(ring)
    assert _fingerprint(resumed) == _fingerprint(reference)
    resumed_events = resume_chaos_point(ring, backend="events")
    assert _fingerprint(resumed_events) == _fingerprint(reference)


def test_resume_skips_a_corrupt_newest_entry(tmp_path):
    reference = run_chaos_point(**SOAK_KW)
    ring, _ = _ring(tmp_path, snapshot_every=1)  # several entries
    newest = sorted(os.listdir(ring))[-1]
    path = os.path.join(ring, newest)
    data = path and open(path, "rb").read()
    with open(path, "wb") as fh:  # truncate mid-payload
        fh.write(data[: len(data) // 2])
    resumed = resume_chaos_point(ring)
    assert _fingerprint(resumed) == _fingerprint(reference)


def test_resume_of_empty_or_unusable_ring_fails_loudly(tmp_path):
    with pytest.raises(FileNotFoundError):
        resume_chaos_point(str(tmp_path / "nowhere"))
    ring = tmp_path / "allbad"
    ring.mkdir()
    (ring / "chaos-000000000400.snap").write_bytes(b"not a snapshot")
    (ring / "chaos-000000000800.snap").write_bytes(MAGIC + b"\x00")
    with pytest.raises(SnapshotFormatError) as excinfo:
        resume_chaos_point(str(ring))
    assert "no usable chaos snapshot" in str(excinfo.value)


def test_trial_specs_give_each_soak_its_own_ring_subdir(tmp_path):
    specs = chaos_trial_specs(
        seeds=2,
        self_heal=(True, False),
        snapshot_every=2,
        snapshot_dir=str(tmp_path),
        **SOAK_KW
    )
    subdirs = [spec.params["snapshot_dir"] for spec in specs]
    assert len(set(subdirs)) == len(specs)
    assert [os.path.basename(d) for d in subdirs] == [
        "soak0-healon", "soak0-healoff", "soak1-healon", "soak1-healoff",
    ]
    for spec in specs:
        assert spec.params["snapshot_every"] == 2
    # Without a ring, no snapshot params leak into the specs.
    for spec in chaos_trial_specs(seeds=1, **SOAK_KW):
        assert "snapshot_dir" not in spec.params
