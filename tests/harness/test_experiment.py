"""Experiment runner and the Figure 3 load sweep machinery."""

import math

import pytest

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import (
    figure3_network,
    run_load_point,
    unloaded_latency,
)
from repro.harness.reporting import format_series, format_table, results_to_series
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


@pytest.fixture(scope="module")
def small_result():
    network = build_network(figure1_plan(), seed=33, fast_reclaim=True)
    traffic = UniformRandomTraffic(16, 4, rate=0.02, message_words=5, seed=3)
    return run_experiment(
        network, traffic, warmup_cycles=300, measure_cycles=1500, label="small"
    )


class TestRunExperiment:
    def test_delivers_messages(self, small_result):
        assert small_result.delivered_count > 10
        assert small_result.abandoned_count == 0

    def test_latency_statistics_consistent(self, small_result):
        result = small_result
        assert result.median_latency <= result.mean_latency * 1.5
        assert result.latency_percentile(95) >= result.median_latency
        assert result.mean_attempts >= 1.0
        assert not math.isnan(result.mean_latency)

    def test_delivered_load_in_unit_range(self, small_result):
        assert 0 < small_result.delivered_load < 1

    def test_as_dict_complete(self, small_result):
        data = small_result.as_dict()
        for key in (
            "label",
            "delivered",
            "mean_latency",
            "p95_latency",
            "delivered_load",
            "mean_attempts",
        ):
            assert key in data


class TestUnloadedLatency:
    def test_unloaded_latency_in_paper_regime(self):
        """Paper: 28 cycles.  Ours: the same pipeline structure plus an
        explicit per-hop wire register each way, a checksum word and a
        close handshake — expect the same few-tens-of-cycles regime."""
        latency = unloaded_latency(seed=1, samples=8)
        assert 28 <= latency <= 55

    def test_unloaded_latency_deterministic_per_seed(self):
        a = unloaded_latency(seed=2, samples=4)
        b = unloaded_latency(seed=2, samples=4)
        assert a == b


class TestLoadPoints:
    def test_latency_rises_with_load(self):
        light = run_load_point(0.002, seed=4, warmup_cycles=400, measure_cycles=2500)
        heavy = run_load_point(0.30, seed=4, warmup_cycles=400, measure_cycles=2500)
        assert heavy.mean_latency > light.mean_latency
        assert heavy.delivered_load > light.delivered_load

    def test_light_load_near_unloaded_latency(self):
        light = run_load_point(0.002, seed=5, warmup_cycles=400, measure_cycles=2500)
        base = unloaded_latency(seed=5, samples=6)
        assert light.mean_latency < base * 1.5


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"name": "a", "value": 1.5},
            {"name": "bb", "value": 20.25},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series_roundtrip(self, small_result):
        points = results_to_series([small_result])
        text = format_series(
            points, x_label="label", y_labels=["mean_latency", "delivered"]
        )
        assert "small" in text
        assert "mean_latency" in text

    def test_tuple_cells(self):
        rows = [{"range": (1, 2)}]
        assert "1-2" in format_table(rows)
