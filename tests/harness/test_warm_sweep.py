"""Warm-started fault sweeps: one shared warmup snapshot feeds every
fault level, reproducing a cold inject-after-warmup sweep exactly
while skipping the warmup cycles."""

import pickle

import pytest

from repro.harness.fault_sweep import (
    fault_trial_specs,
    make_warm_snapshot,
    run_fault_point,
)
from repro.harness.load_sweep import figure1_network

_LEVELS = ((0, 0), (2, 0), (1, 1))
_KW = dict(
    rate=0.02,
    seed=3,
    message_words=8,
    warmup_cycles=400,
    network_factory=figure1_network,
)


def _warm(**overrides):
    kw = dict(_KW)
    kw.update(overrides)
    return make_warm_snapshot(**kw)


def _point(**overrides):
    kw = dict(_KW, measure_cycles=800)
    kw.update(overrides)
    return run_fault_point(**kw)


def _result_fingerprint(result):
    return {
        "delivered": result.delivered_count,
        "abandoned": result.abandoned_count,
        "latencies": list(result._latencies),
        "attempts": list(result._attempts),
        "queueing": list(result._queueing),
        "sources": list(result._sources),
        "attempt_failures": dict(result.attempt_failures),
        "undeliverable": result.undeliverable,
        "metrics": result.metrics,
    }


def test_warm_start_reproduces_cold_sweep_exactly():
    warm = _warm()
    for links, routers in _LEVELS:
        cold = _point(
            n_dead_links=links,
            n_dead_routers=routers,
            inject_after_warmup=True,
        )
        warm_result = _point(
            n_dead_links=links, n_dead_routers=routers, warm_snapshot=warm
        )
        assert _result_fingerprint(warm_result) == _result_fingerprint(cold)


def test_warm_start_survives_pickling_and_backend_change():
    # The capture crosses a process boundary (worker hand-off) and is
    # restored under the event-driven engine: still byte-identical.
    warm = pickle.loads(pickle.dumps(_warm()))
    cold = _point(n_dead_links=2, inject_after_warmup=True)
    warm_result = _point(n_dead_links=2, warm_snapshot=warm, backend="events")
    assert _result_fingerprint(warm_result) == _result_fingerprint(cold)


def test_warm_start_with_metrics_matches_cold_metrics():
    warm = _warm(metrics=True)
    cold = _point(n_dead_links=1, inject_after_warmup=True, metrics=True)
    warm_result = _point(n_dead_links=1, warm_snapshot=warm, metrics=True)
    assert cold.metrics is not None
    assert warm_result.metrics == cold.metrics
    assert _result_fingerprint(warm_result) == _result_fingerprint(cold)


def test_mismatched_warm_snapshot_is_refused():
    warm = _warm()
    with pytest.raises(ValueError) as excinfo:
        _point(n_dead_links=1, warm_snapshot=warm, rate=0.08)
    message = str(excinfo.value)
    assert "rate" in message and "0.08" in message
    # A snapshot that is not a fault-sweep warm start at all is also
    # rejected, by kind, before any parameter comparison.
    network = figure1_network(seed=1)
    stranger = network.engine.snapshot(extras={"network": network})
    with pytest.raises(ValueError) as excinfo:
        _point(n_dead_links=1, warm_snapshot=stranger)
    assert "fault-sweep warm start" in str(excinfo.value)


def test_warm_specs_are_cacheable_and_content_keyed():
    warm = _warm()
    specs = fault_trial_specs(
        fault_levels=_LEVELS, warm_snapshot=warm, **_KW
    )
    assert all(spec.cacheable() for spec in specs)
    prints = [spec.fingerprint(code_version="x") for spec in specs]
    # The snapshot enters the key by content hash: a pickled copy keys
    # identically, a different warmup invalidates every level.
    copied = pickle.loads(pickle.dumps(warm))
    assert [
        spec.fingerprint(code_version="x")
        for spec in fault_trial_specs(
            fault_levels=_LEVELS, warm_snapshot=copied, **_KW
        )
    ] == prints
    other = _warm(warmup_cycles=500)
    other_prints = [
        spec.fingerprint(code_version="x")
        for spec in fault_trial_specs(
            fault_levels=_LEVELS,
            warm_snapshot=other,
            **dict(_KW, warmup_cycles=500)
        )
    ]
    assert not set(prints) & set(other_prints)


def test_warm_and_cold_shared_warmup_specs_share_the_seed_split():
    # Shared-warmup specs (warm or cold) carry the level's randomness
    # in fault_seed and the workload's in the spec seed, so a warm
    # sweep is comparable level-for-level with a cold one.
    warm = _warm()
    warm_specs = fault_trial_specs(
        fault_levels=_LEVELS, warm_snapshot=warm, **_KW
    )
    cold_specs = fault_trial_specs(
        fault_levels=_LEVELS, inject_after_warmup=True, **_KW
    )
    for warm_spec, cold_spec in zip(warm_specs, cold_specs):
        assert warm_spec.seed == cold_spec.seed == _KW["seed"]
        assert (
            warm_spec.params["fault_seed"] == cold_spec.params["fault_seed"]
        )
        assert warm_spec.params["inject_after_warmup"]
        assert cold_spec.params["inject_after_warmup"]
        assert "warm_snapshot" not in cold_spec.params


def test_legacy_specs_are_unchanged():
    # Without shared warmup the historical cache identity holds: the
    # per-level derived seed is the whole trial seed and no new params
    # appear — pre-existing sweep caches stay valid.
    specs = fault_trial_specs(fault_levels=_LEVELS, rate=0.02, seed=3)
    assert len({spec.seed for spec in specs}) == len(_LEVELS)
    for spec in specs:
        assert "inject_after_warmup" not in spec.params
        assert "fault_seed" not in spec.params
        assert "warm_snapshot" not in spec.params
