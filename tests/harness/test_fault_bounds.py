"""degradation_failures: the checkable form of "degrades robustly"."""

import pytest

from repro.harness.fault_sweep import degradation_failures


class _Level:
    def __init__(self, label, delivered_load, undeliverable=0):
        self.label = label
        self.delivered_load = delivered_load
        self.undeliverable = undeliverable


def test_within_bound_is_empty():
    results = [_Level("0:0", 0.10), _Level("8:0", 0.09), _Level("8:4", 0.08)]
    assert degradation_failures(results, 0.5) == []


def test_flags_levels_below_the_floor():
    results = [_Level("0:0", 0.10), _Level("8:0", 0.09), _Level("16:8", 0.04)]
    failures = degradation_failures(results, 0.25)
    assert [(r.label, floor) for r, floor in failures] == [
        ("16:8", pytest.approx(0.075))
    ]


def test_baseline_itself_is_never_flagged():
    results = [_Level("0:0", 0.0), _Level("8:0", 0.0)]
    # A zero baseline makes the floor zero: nothing can fall below it.
    assert degradation_failures(results, 0.0) == []


def test_single_point_sweeps_have_no_baseline_comparison():
    assert degradation_failures([_Level("0:0", 0.1)], 0.0) == []
    assert degradation_failures([], 0.5) == []


def test_bound_is_validated():
    results = [_Level("a", 1.0), _Level("b", 0.5)]
    with pytest.raises(ValueError):
        degradation_failures(results, 1.5)
    with pytest.raises(ValueError):
        degradation_failures(results, -0.1)


def test_undeliverable_bound_flags_structural_loss():
    results = [
        _Level("0:0", 0.10, undeliverable=0),
        _Level("8:0", 0.09, undeliverable=2),
        _Level("16:8", 0.08, undeliverable=7),
    ]
    failures = degradation_failures(results, max_undeliverable=3)
    # Undeliverable violations carry no degradation floor.
    assert [(r.label, floor) for r, floor in failures] == [("16:8", None)]


def test_undeliverable_bound_includes_the_baseline():
    results = [
        _Level("0:0", 0.10, undeliverable=5),
        _Level("8:0", 0.09, undeliverable=0),
    ]
    failures = degradation_failures(results, max_undeliverable=4)
    assert [r.label for r, _floor in failures] == ["0:0"]


def test_combined_bounds_report_both_kinds():
    results = [
        _Level("0:0", 0.10, undeliverable=0),
        _Level("16:8", 0.04, undeliverable=9),
    ]
    failures = degradation_failures(
        results, max_degradation=0.25, max_undeliverable=3
    )
    labels = [(r.label, floor) for r, floor in failures]
    assert ("16:8", pytest.approx(0.075)) in labels
    assert ("16:8", None) in labels


def test_undeliverable_only_needs_no_degradation_bound():
    results = [_Level("a", 0.1, undeliverable=1)]
    assert degradation_failures(results, max_undeliverable=2) == []
