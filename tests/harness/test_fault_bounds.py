"""degradation_failures: the checkable form of "degrades robustly"."""

import pytest

from repro.harness.fault_sweep import degradation_failures


class _Level:
    def __init__(self, label, delivered_load):
        self.label = label
        self.delivered_load = delivered_load


def test_within_bound_is_empty():
    results = [_Level("0:0", 0.10), _Level("8:0", 0.09), _Level("8:4", 0.08)]
    assert degradation_failures(results, 0.5) == []


def test_flags_levels_below_the_floor():
    results = [_Level("0:0", 0.10), _Level("8:0", 0.09), _Level("16:8", 0.04)]
    failures = degradation_failures(results, 0.25)
    assert [(r.label, floor) for r, floor in failures] == [
        ("16:8", pytest.approx(0.075))
    ]


def test_baseline_itself_is_never_flagged():
    results = [_Level("0:0", 0.0), _Level("8:0", 0.0)]
    # A zero baseline makes the floor zero: nothing can fall below it.
    assert degradation_failures(results, 0.0) == []


def test_single_point_sweeps_have_no_baseline_comparison():
    assert degradation_failures([_Level("0:0", 0.1)], 0.0) == []
    assert degradation_failures([], 0.5) == []


def test_bound_is_validated():
    results = [_Level("a", 1.0), _Level("b", 0.5)]
    with pytest.raises(ValueError):
        degradation_failures(results, 1.5)
    with pytest.raises(ValueError):
        degradation_failures(results, -0.1)
