"""Chaos soak harness: determinism, parallel equivalence, SLO gates."""

import pickle

import pytest

from repro.harness.chaos import (
    ChaosResult,
    chaos_slo_failures,
    chaos_sweep,
    chaos_trial_specs,
    run_chaos_point,
)

# Small, fast soak used throughout this module.
SOAK_KW = dict(
    n_windows=8,
    window_cycles=200,
    warmup_windows=2,
    rate=0.02,
    n_flaky_links=1,
    n_dead_routers=1,
    mtbf=400,
    mttr=200,
    max_attempts=30,
)


def _mini_result(windows, **overrides):
    kwargs = dict(
        label="t",
        seed=0,
        self_heal=True,
        window_cycles=100,
        warmup_windows=2,
        fault_start=200,
        slo_fraction=0.75,
        windows=windows,
        undeliverable=0,
        attempt_failures={},
        fault_events=[],
        mask_events=[],
        repairs=[],
        evidence_count=0,
        oracle_violations=0,
    )
    kwargs.update(overrides)
    return ChaosResult(**kwargs)


class TestChaosResult:
    def test_availability_counts_post_fault_slo_windows(self):
        # baseline = mean(40, 40) = 40; SLO floor = 30.
        result = _mini_result([40, 40, 10, 20, 35, 40])
        assert result.baseline_rate == 40.0
        assert result.availability == pytest.approx(2 / 4)
        assert result.degraded_windows == 2

    def test_mttr_is_mean_degraded_episode_length(self):
        # Post-fault: [10, 10, 40, 10, 40] -> episodes of 2 and 1
        # windows; mean 1.5 episodes * 100 cycles.
        result = _mini_result([40, 40, 10, 10, 40, 10, 40])
        assert result.mttr_cycles == pytest.approx(150.0)

    def test_mttr_zero_when_never_degraded(self):
        result = _mini_result([40, 40, 40, 40])
        assert result.mttr_cycles == 0.0
        assert result.availability == 1.0

    def test_recovered_rate_is_last_three_windows(self):
        result = _mini_result([40, 40, 10, 20, 30, 40])
        assert result.recovered_rate == pytest.approx(30.0)

    def test_as_dict_round_trips_core_numbers(self):
        result = _mini_result([40, 40, 20, 40])
        data = result.as_dict()
        assert data["availability"] == result.availability
        assert data["mttr_cycles"] == result.mttr_cycles
        assert data["masked_wires"] == 0


class TestSLOGate:
    def test_bounds_flag_only_violators(self):
        good = _mini_result([40, 40, 40, 40])
        bad = _mini_result([40, 40, 5, 5], undeliverable=9, label="bad")
        failures = chaos_slo_failures(
            [good, bad],
            min_availability=0.5,
            max_undeliverable=3,
            max_mttr_cycles=100,
        )
        assert {r.label for r, _reason in failures} == {"bad"}
        reasons = sorted(reason for _r, reason in failures)
        assert any("availability" in r for r in reasons)
        assert any("undeliverable" in r for r in reasons)
        assert any("MTTR" in r for r in reasons)

    def test_no_bounds_no_failures(self):
        bad = _mini_result([40, 40, 5, 5])
        assert chaos_slo_failures([bad]) == []


class TestDeterminism:
    def test_same_seed_same_soak(self):
        first = run_chaos_point(seed=3, **SOAK_KW)
        second = run_chaos_point(seed=3, **SOAK_KW)
        assert first.windows == second.windows
        assert first.fault_events == second.fault_events
        assert first.mask_events == second.mask_events
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_trial_specs_seeds_are_stable(self):
        specs = chaos_trial_specs(seeds=2, seed=9, self_heal=(True, False))
        again = chaos_trial_specs(seeds=2, seed=9, self_heal=(True, False))
        assert [s.seed for s in specs] == [s.seed for s in again]
        assert len({s.seed for s in specs}) == 4
        assert [s.label for s in specs] == [
            "chaos[0] heal=on",
            "chaos[0] heal=off",
            "chaos[1] heal=on",
            "chaos[1] heal=off",
        ]


class TestParallelEquivalence:
    def test_serial_matches_parallel_byte_identically(self):
        kw = dict(seeds=2, seed=4, self_heal=(True,), metrics=True, **SOAK_KW)
        serial = chaos_sweep(workers=1, **kw)
        parallel = chaos_sweep(workers=2, **kw)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            # Per-result pickles match byte-for-byte (list-level pickle
            # differs only via memoized object identity; see
            # tests/harness/test_parallel.py).
            assert pickle.dumps(a) == pickle.dumps(b)
            assert a.metrics is not None
            assert a.metrics.as_dict() == b.metrics.as_dict()
