"""Utilization probe: flat under uniform load, spiked under hotspot."""

import pytest

from repro.endpoint.traffic import HotspotTraffic, UniformRandomTraffic
from repro.harness.utilization import attach_probe
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _loaded_network(traffic_class, seed=91, **traffic_kwargs):
    network = build_network(figure1_plan(), seed=seed, fast_reclaim=True)
    probe = attach_probe(network, period=2)
    traffic = traffic_class(16, 4, message_words=8, seed=seed, **traffic_kwargs)
    traffic.attach(network)
    network.run(3000)
    return network, probe


def test_idle_network_zero_utilization():
    network = build_network(figure1_plan(), seed=90)
    probe = attach_probe(network)
    network.run(100)
    assert all(v == 0.0 for v in probe.router_utilization().values())
    assert probe.samples > 0


def test_uniform_load_is_balanced():
    _network, probe = _loaded_network(UniformRandomTraffic, rate=0.05)
    for stage in range(3):
        assert probe.imbalance(stage) < 1.6
    stages = probe.stage_utilization()
    assert all(value > 0 for value in stages.values())


def test_hotspot_shows_up_in_final_stage():
    """Everyone hammering endpoint 0 must make the final-stage routers
    serving endpoint 0 the hottest in their stage."""
    _network, probe = _loaded_network(
        HotspotTraffic, rate=0.08, hotspot=0, fraction=0.7
    )
    hottest = probe.hottest(4)
    # Endpoint 0 lives in final-stage block 0; its two routers are
    # (2, 0, 0) and (2, 0, 1).
    hot_keys = {key for key, _value in hottest}
    assert hot_keys & {(2, 0, 0), (2, 0, 1)}
    assert probe.imbalance(2) > 1.5


def test_period_controls_sampling():
    network = build_network(figure1_plan(), seed=92)
    probe = attach_probe(network, period=10)
    network.run(100)
    assert probe.samples == 10


def test_stage_utilization_keys():
    _network, probe = _loaded_network(UniformRandomTraffic, rate=0.02)
    assert set(probe.stage_utilization()) == {0, 1, 2}


def test_probe_registers_as_engine_observer():
    """The probe must sample as an observer (post-tick, fully staged
    state), not as a component whose view depends on registration order."""
    network = build_network(figure1_plan(), seed=93)
    probe = attach_probe(network)
    assert probe in network.engine.observers
    assert probe not in network.engine.components


def test_probe_snapshot_renders_with_stage_heatmap():
    from repro.harness.reporting import format_stage_heatmap

    _network, probe = _loaded_network(UniformRandomTraffic, rate=0.05)
    snapshot = probe.snapshot()
    assert snapshot.value("router.util.samples") == probe.samples
    text = format_stage_heatmap(snapshot)
    assert text.startswith("stage 0")
    # The snapshot-derived numbers agree with the probe's own math.
    stage0 = probe.stage_utilization()[0]
    assert "{:5.1%}".format(stage0).strip() in text
