"""Reporting helpers: tables, trial progress lines, telemetry views."""

import io

from repro.harness.parallel import TrialEvent
from repro.harness.reporting import (
    ascii_chart,
    format_histogram,
    format_percentiles,
    format_series,
    format_stage_heatmap,
    format_table,
    format_trial_event,
    progress_printer,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry


# -- format_table --------------------------------------------------------


def test_format_table_empty_rows():
    assert format_table([]) == "(no rows)"


def test_format_table_alignment_and_title():
    rows = [
        {"name": "alpha", "value": 1.0},
        {"name": "b", "value": 12.25},
    ]
    text = format_table(rows, title="things")
    lines = text.splitlines()
    assert lines[0] == "things"
    assert lines[1].split() == ["name", "value"]
    assert set(lines[2]) <= {"-", " "}
    assert "12.2" in lines[4]  # default floatfmt rounds to one decimal


def test_format_table_missing_columns_render_as_dash():
    rows = [{"a": 1, "b": 2}, {"a": 3}]
    text = format_table(rows, columns=["a", "b", "c"])
    last = text.splitlines()[-1]
    assert last.split() == ["3", "-", "-"]


def test_format_table_tuple_and_custom_float_format():
    rows = [{"pair": (1.5, 2.5), "x": 3.14159}]
    text = format_table(rows, floatfmt="{:.3f}")
    assert "1.500-2.500" in text
    assert "3.142" in text


def test_format_series_orders_columns():
    points = [(0.1, {"lat": 30.0, "load": 0.2})]
    text = format_series(points, x_label="rate", y_labels=["load", "lat"])
    header = text.splitlines()[0].split()
    assert header == ["rate", "load", "lat"]


def test_ascii_chart_handles_empty_and_nan():
    assert ascii_chart([]) == "(no data)"
    assert ascii_chart([(0, float("nan"))]) == "(no data)"
    chart = ascii_chart([(0, 1), (1, 2), (2, 8)], title="t")
    assert chart.splitlines()[0] == "t"
    assert "*" in chart


# -- trial progress ------------------------------------------------------


def test_format_trial_event_timed():
    event = TrialEvent(2, 8, "rate=0.01", 2.125, "executed")
    line = format_trial_event(event)
    assert line.startswith("[3/8] rate=0.01")
    assert line.endswith("2.12s")


def test_format_trial_event_cached():
    event = TrialEvent(9, 10, "rate=0.32", 0.0, "cache")
    line = format_trial_event(event)
    assert line.startswith("[10/10]")
    assert line.endswith("cached")


def test_progress_printer_writes_to_given_stream():
    stream = io.StringIO()
    printer = progress_printer(stream=stream)
    printer(TrialEvent(0, 2, "rate=0.1", 1.0, "executed"))
    printer(TrialEvent(1, 2, "rate=0.2", 0.0, "cache"))
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("[1/2]")
    assert lines[1].endswith("cached")


def test_progress_printer_defaults_to_stderr(capsys):
    progress_printer()(TrialEvent(0, 1, "x", 0.5, "executed"))
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "[1/1] x" in captured.err


# -- telemetry views -----------------------------------------------------


def _snapshot():
    registry = MetricsRegistry()
    latency = registry.histogram("message.latency.cycles")
    for value in (24, 30, 31, 48, 70, 130):
        latency.observe(value)
    registry.counter("router.util.samples").inc(100)
    for stage, router, busy, ports in (
        (0, "0.0.0", 120, 8),
        (0, "0.0.1", 40, 8),
        (1, "1.0.0", 300, 8),
    ):
        registry.counter(
            "router.util.busy", router=router, stage=stage
        ).inc(busy)
        registry.gauge(
            "router.util.ports", router=router, stage=stage
        ).set(ports)
    return registry.snapshot()


def test_format_histogram_bars_scale_to_modal_bucket():
    histogram = Histogram()
    for value in (1, 2, 2, 3, 10):
        histogram.observe(value)
    text = format_histogram(histogram, title="h", width=10)
    lines = text.splitlines()
    assert lines[0] == "h"
    assert "count=5" in lines[1]
    # Bucket [2, 4) holds 3 of 5 values: the longest bar.
    bars = {
        line.split(")")[0].strip("[ "): line.count("#")
        for line in lines[2:]
    }
    assert max(bars, key=bars.get).startswith("2")


def test_format_histogram_empty():
    assert format_histogram(Histogram()) == "(empty histogram)"


def test_format_percentiles_skips_missing_series():
    snapshot = _snapshot()
    text = format_percentiles(
        snapshot, ["message.latency.cycles", "not.recorded"]
    )
    assert "message.latency.cycles" in text
    assert "not.recorded" not in text
    assert format_percentiles(snapshot, ["nope"]) == "(no histogram series)"


def test_format_percentiles_columns():
    text = format_percentiles(_snapshot(), ["message.latency.cycles"])
    header = text.splitlines()[0].split()
    assert header == [
        "metric", "count", "mean", "min", "p50", "p90", "p99", "p99.9", "max"
    ]
    row = text.splitlines()[2].split()
    assert row[1] == "6"  # count
    assert float(row[3]) == 24.0 and float(row[-1]) == 130.0


def test_format_stage_heatmap():
    text = format_stage_heatmap(_snapshot(), title="util", width=20)
    lines = text.splitlines()
    assert lines[0] == "util"
    assert lines[1].startswith("stage 0")
    # Stage 0 mean: (120 + 40) / (100 * 8 * 2) = 10%.
    assert "10.0%" in lines[1]
    assert "max 15.0% @ r0.0.0" in lines[1]
    # Stage 1: 300 / 800 = 37.5%.
    assert "37.5%" in lines[2]


def test_format_stage_heatmap_without_samples():
    assert format_stage_heatmap(MetricsRegistry().snapshot()) == (
        "(no utilization samples)"
    )


def test_format_trial_event_timeout_with_heartbeat():
    event = TrialEvent(
        0, 4, "soak0", 30.0, "timeout",
        duration=31.5, heartbeat={"cycle": 4200, "delivered": 17},
    )
    line = format_trial_event(event)
    assert "TIMEOUT after 32s" in line
    assert "last heartbeat @cycle 4200" in line


def test_format_trial_event_timeout_without_heartbeat():
    event = TrialEvent(0, 4, "soak0", 30.0, "timeout", duration=30.0)
    line = format_trial_event(event)
    assert "TIMEOUT" in line
    assert "heartbeat" not in line


def test_format_trial_event_shows_queueing_wall_time():
    event = TrialEvent(0, 4, "rate=0.01", 1.0, "executed", duration=9.0)
    line = format_trial_event(event)
    assert "1.00s" in line
    assert "(9.00s wall)" in line
    # ...but not when the wall clock tracked the compute time.
    quick = TrialEvent(0, 4, "rate=0.01", 1.0, "executed", duration=1.1)
    assert "wall" not in format_trial_event(quick)
