"""Router fuzzing: arbitrary word sequences must never corrupt state.

A METRO router on a real wire can see anything — noise, truncated
streams, stray control tokens, adversarial interleavings.  Whatever
arrives, three invariants must hold:

1. the router never raises (no internal state corruption);
2. backward-port bookkeeping stays consistent: the allocator, the
   owner table and the per-connection records always agree;
3. after the stimulus ends and the dust settles (silence long enough
   for the watchdog), every resource is free again — garbage cannot
   permanently claim network capacity.
"""

from hypothesis import given, settings, strategies as st

from repro.core import words as W
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import RandomStream
from repro.core.router import IDLE_STATE, MetroRouter
from repro.sim.channel import Channel
from repro.sim.engine import Engine

WORD_CHOICES = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=255).map(W.data),
    st.just(W.IDLE_WORD),
    st.just(W.TURN_WORD),
    st.just(W.DROP_WORD),
)

stimulus = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), WORD_CHOICES),
    max_size=80,
)


def _build(seed, dp=1, fast_reclaim=False):
    params = RouterParameters(i=4, o=4, w=8, max_d=2, dp=dp)
    config = RouterConfig(params, dilation=2)
    if fast_reclaim:
        for port in range(4):
            config.fast_reclaim[config.forward_port_id(port)] = True
    router = MetroRouter(
        params,
        name="fuzz",
        config=config,
        random_stream=RandomStream(seed),
        signal_timeout=16,
    )
    engine = Engine()
    engine.add_component(router)
    fwd_ends = []
    for p in range(4):
        channel = Channel(name="f{}".format(p))
        engine.add_channel(channel)
        router.attach_forward(p, channel.b)
        fwd_ends.append(channel.a)
    bwd_ends = []
    for q in range(4):
        channel = Channel(name="b{}".format(q))
        engine.add_channel(channel)
        router.attach_backward(q, channel.a)
        bwd_ends.append(channel.b)
    return engine, router, fwd_ends, bwd_ends


def _bookkeeping_consistent(router):
    owners = router._bwd_owner
    for q, owner in enumerate(owners):
        if owner is None:
            assert not router.allocator.in_use(q)
        else:
            assert router.allocator.in_use(q)
    # Active connections' claimed ports appear in the owner table.
    for conn in router._conns:
        if conn.bwd_port is not None:
            assert owners[conn.bwd_port] is conn


@given(st.integers(min_value=0, max_value=2**31), stimulus)
@settings(max_examples=60, deadline=None)
def test_forward_fuzz_invariants(seed, events):
    engine, router, fwd_ends, _bwd = _build(seed)
    for port, word in events:
        if word is not None:
            fwd_ends[port].send(word)
        engine.step()
        _bookkeeping_consistent(router)
    # Silence until every watchdog has fired, plus drain time.
    engine.run(40)
    _bookkeeping_consistent(router)
    assert router.busy_backward_ports() == []
    assert all(
        router.connection_state(p) == IDLE_STATE for p in range(4)
    )


@given(st.integers(min_value=0, max_value=2**31), stimulus)
@settings(max_examples=40, deadline=None)
def test_forward_fuzz_with_fast_reclaim(seed, events):
    engine, router, fwd_ends, _bwd = _build(seed, fast_reclaim=True)
    for port, word in events:
        if word is not None:
            fwd_ends[port].send(word)
        engine.step()
        _bookkeeping_consistent(router)
    engine.run(40)
    assert router.busy_backward_ports() == []


@given(
    st.integers(min_value=0, max_value=2**31),
    stimulus,
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), WORD_CHOICES),
        max_size=40,
    ),
)
@settings(max_examples=40, deadline=None)
def test_bidirectional_fuzz(seed, forward_events, backward_events):
    """Garbage on both sides at once (e.g. two faulty neighbours)."""
    engine, router, fwd_ends, bwd_ends = _build(seed, dp=2)
    length = max(len(forward_events), len(backward_events))
    for index in range(length):
        if index < len(forward_events):
            port, word = forward_events[index]
            if word is not None:
                fwd_ends[port].send(word)
        if index < len(backward_events):
            port, word = backward_events[index]
            if word is not None:
                bwd_ends[port].send(word)
        engine.step()
        _bookkeeping_consistent(router)
    engine.run(60)
    _bookkeeping_consistent(router)
    assert router.busy_backward_ports() == []
