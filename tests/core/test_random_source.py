"""Random bit streams and the shared cascade bus."""

import pytest

from repro.core.random_source import RandomStream, SharedRandomBus


class TestRandomStream:
    def test_bits_are_binary(self):
        stream = RandomStream(1)
        assert all(stream.bit() in (0, 1) for _ in range(100))

    def test_bits_width(self):
        stream = RandomStream(2)
        for count in (1, 4, 8, 16):
            assert 0 <= stream.bits(count) < (1 << count)

    def test_bits_zero_or_negative(self):
        stream = RandomStream(3)
        assert stream.bits(0) == 0
        assert stream.bits(-1) == 0

    def test_choose_range(self):
        stream = RandomStream(4)
        assert all(0 <= stream.choose(5) < 5 for _ in range(200))

    def test_choose_one_is_free(self):
        stream = RandomStream(5)
        before = stream._rng.getstate()
        assert stream.choose(1) == 0
        assert stream._rng.getstate() == before  # no entropy consumed

    def test_choose_zero_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(6).choose(0)

    def test_reproducible(self):
        a = [RandomStream(7).choose(8) for _ in range(1)]
        b = [RandomStream(7).choose(8) for _ in range(1)]
        assert a == b

    def test_seeds_differ(self):
        a = [RandomStream(1).bits(32)]
        b = [RandomStream(2).bits(32)]
        assert a != b


class TestSharedRandomBus:
    def test_same_key_same_cycle_same_value(self):
        bus = SharedRandomBus(1)
        bus.begin_cycle(0)
        first = bus.choose_shared("k", 4)
        assert all(bus.choose_shared("k", 4) == first for _ in range(10))

    def test_different_keys_independent(self):
        bus = SharedRandomBus(2)
        bus.begin_cycle(0)
        values = {key: bus.choose_shared(key, 1000) for key in range(20)}
        assert len(set(values.values())) > 1

    def test_new_cycle_invalidates_memo(self):
        bus = SharedRandomBus(3)
        seen = set()
        for cycle in range(50):
            bus.begin_cycle(cycle)
            seen.add(bus.choose_shared("k", 1000))
        assert len(seen) > 10

    def test_begin_cycle_idempotent_within_cycle(self):
        bus = SharedRandomBus(4)
        bus.begin_cycle(5)
        value = bus.choose_shared("k", 16)
        bus.begin_cycle(5)  # same cycle again: memo must survive
        assert bus.choose_shared("k", 16) == value

    def test_key_includes_candidate_count(self):
        """(key, n) memoization: the same port arbitration with a
        different free count is a different decision."""
        bus = SharedRandomBus(5)
        bus.begin_cycle(0)
        a = bus.choose_shared("k", 2)
        b = bus.choose_shared("k", 3)
        # Both valid in their own ranges.
        assert 0 <= a < 2 and 0 <= b < 3
