"""Width cascading: shared randomness + wired-AND consistency."""

import pytest

from repro.core import words as W
from repro.core.cascade import CascadeGroup, join_slices, split_value
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import SharedRandomBus
from repro.core.router import DISCARD_STATE, FORWARD_STATE, MetroRouter
from repro.sim.channel import Channel
from repro.sim.engine import Engine


class TestSlicing:
    def test_split_join_roundtrip(self):
        for value in (0, 1, 0xAB, 0xFFFF, 0x1234):
            assert join_slices(split_value(value, 4, 4), 4) == value

    def test_split_is_little_endian(self):
        assert split_value(0xAB, 4, 2) == [0xB, 0xA]

    def test_join_masks_overwide_slices(self):
        assert join_slices([0x1F, 0x1], 4) == 0x1F & 0xF | (0x1 << 4)


class CascadeHarness:
    """``c`` routers fed identical headers, slice-distinct data."""

    def __init__(self, c=2, seed=11):
        self.c = c
        self.params = RouterParameters(i=4, o=4, w=4, max_d=2)
        self.bus = SharedRandomBus(seed=seed)
        self.engine = Engine()
        self.members = []
        self.fwd = []  # [member][port]
        self.bwd = []
        for index in range(c):
            router = MetroRouter(
                self.params,
                name="slice{}".format(index),
                config=RouterConfig(self.params, dilation=2),
                random_stream=self.bus,
            )
            self.engine.add_component(router)
            fwd_ends, bwd_ends = [], []
            for p in range(4):
                channel = Channel(name="f{}:{}".format(index, p))
                self.engine.add_channel(channel)
                router.attach_forward(p, channel.b)
                fwd_ends.append(channel.a)
            for q in range(4):
                channel = Channel(name="b{}:{}".format(index, q))
                self.engine.add_channel(channel)
                router.attach_backward(q, channel.a)
                bwd_ends.append(channel.b)
            self.members.append(router)
            self.fwd.append(fwd_ends)
            self.bwd.append(bwd_ends)
        self.group = CascadeGroup(self.members)
        self.engine.add_component(self.group)

    def send_all(self, port, word_per_member):
        for index in range(self.c):
            self.fwd[index][port].send(word_per_member[index])
        self.engine.step()

    def step(self, n=1):
        self.engine.run(n)


def test_identical_requests_allocate_identically():
    h = CascadeHarness(c=2)
    for trial in range(20):
        header = W.data(0b1000 if trial % 2 else 0b0000)
        h.send_all(0, [header, header])
        h.step()
        ports = [m.connected_backward_port(0) for m in h.members]
        assert ports[0] is not None
        assert ports[0] == ports[1]
        assert h.group.consistent()
        for index in range(h.c):
            h.fwd[index][0].send(W.DROP_WORD)
        h.step(3)


def test_four_wide_cascade_consistent():
    h = CascadeHarness(c=4)
    h.send_all(0, [W.data(0b1000)] * 4)
    h.step()
    ports = {m.connected_backward_port(0) for m in h.members}
    assert len(ports) == 1
    assert h.group.consistent()


def test_corrupted_header_slice_detected_and_contained():
    """One slice sees a different direction bit: the wired-AND must
    fire and shut the connection down on every member."""
    h = CascadeHarness(c=2)
    h.send_all(0, [W.data(0b0000), W.data(0b1000)])  # directions 0 vs 1
    bcbs = []
    for _ in range(4):
        h.step()
        bcbs.extend(
            b for b in (h.fwd[i][0].recv_bcb() for i in range(2)) if b is not None
        )
    assert h.group.mismatches >= 1
    for member in h.members:
        assert member.busy_backward_ports() == []
        assert member.connection_state(0) == DISCARD_STATE
    # The source hears the teardown via BCB on every slice.
    assert bcbs


def test_mismatch_counts_once_per_disagreement_event():
    h = CascadeHarness(c=2)
    h.send_all(0, [W.data(0b0000), W.data(0b1000)])
    h.step(4)
    first = h.group.mismatches
    h.step(4)
    assert h.group.mismatches == first  # no further events after kill


def test_healthy_traffic_survives_alongside_group():
    """The consistency check is passive for agreeing members."""
    h = CascadeHarness(c=2)
    payload = [0x1, 0x2, 0x3]
    words = [W.data(0b0000)] + [W.data(v) for v in payload]
    for word in words:
        h.send_all(0, [word, word])
    h.step(3)
    assert all(m.connection_state(0) == FORWARD_STATE for m in h.members)
    assert h.group.consistent()
    assert h.group.mismatches == 0


def test_cascade_requires_two_members():
    h = CascadeHarness(c=2)
    with pytest.raises(ValueError):
        CascadeGroup([h.members[0]])


def test_cascade_requires_matching_geometry():
    h = CascadeHarness(c=2)
    other = MetroRouter(RouterParameters(i=8, o=8, w=8, max_d=2))
    with pytest.raises(ValueError):
        CascadeGroup([h.members[0], other])
