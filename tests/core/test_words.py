"""Word encoding and checksum behaviour."""

import pytest

from repro.core import words as W


def test_data_word():
    word = W.data(0xA)
    assert word.kind == W.DATA
    assert word.value == 0xA
    assert not word.is_control()


def test_control_singletons():
    assert W.IDLE_WORD.kind == W.IDLE
    assert W.TURN_WORD.kind == W.TURN
    assert W.DROP_WORD.kind == W.DROP
    assert W.IDLE_WORD.is_control()
    assert W.TURN_WORD.is_control()


def test_word_equality_and_hash():
    assert W.data(3) == W.data(3)
    assert W.data(3) != W.data(4)
    assert W.data(3) != W.IDLE_WORD
    assert len({W.data(3), W.data(3), W.data(4)}) == 2


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        W.Word("bogus")


def test_status_word_payload():
    word = W.status(True, 0x5A, 12, "r0.0.0")
    assert word.kind == W.STATUS
    assert word.value.blocked is True
    assert word.value.checksum == 0x5A
    assert word.value.words_forwarded == 12
    assert word.value.router_name == "r0.0.0"


def test_checksum_deterministic_and_order_sensitive():
    assert W.checksum_of([1, 2, 3]) == W.checksum_of([1, 2, 3])
    assert W.checksum_of([1, 2, 3]) != W.checksum_of([3, 2, 1])


def test_checksum_detects_single_bit_flip():
    base = W.checksum_of([0xA, 0xB, 0xC, 0xD])
    for position in range(4):
        for bit in range(4):
            flipped = [0xA, 0xB, 0xC, 0xD]
            flipped[position] ^= 1 << bit
            assert W.checksum_of(flipped) != base


def test_checksum_empty_is_zero():
    assert W.checksum_of([]) == 0


def test_checksum_handles_multibyte_values():
    wide = W.checksum_of([0x1234, 0xABCD])
    assert 0 <= wide < 256
    assert wide != W.checksum_of([0x34, 0xCD])  # upper bytes matter


def test_checksum_incremental_matches_batch():
    crc = W.Checksum()
    for value in [7, 0, 255, 19]:
        crc.update(value)
    assert crc.value == W.checksum_of([7, 0, 255, 19])
    crc.reset()
    assert crc.value == 0
