"""Single-router protocol behaviour, driven through raw channels."""

import pytest

from repro.core import words as W
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import RandomStream
from repro.core.router import (
    BLOCKED_STATE,
    FORWARD_STATE,
    IDLE_STATE,
    MetroRouter,
    REVERSED_STATE,
)
from repro.sim.channel import Channel
from repro.sim.engine import Engine


class RouterHarness:
    """One router wired to raw channels, with every wire logged.

    After each step the harness samples every backward wire (words the
    router sent downstream) and every forward wire (words the router
    sent upstream), so tests never lose in-flight words.
    """

    def __init__(self, params=None, dilation=2, delay=1, **router_kwargs):
        self.params = params or RouterParameters(i=4, o=4, w=8, max_d=2)
        config = RouterConfig(self.params, dilation=dilation)
        self.router = MetroRouter(
            self.params,
            name="dut",
            config=config,
            random_stream=RandomStream(7),
            **router_kwargs
        )
        self.engine = Engine()
        self.engine.add_component(self.router)
        self.fwd = []  # our ends (A side) of the forward-port channels
        self.bwd = []  # our ends (B side) of the backward-port channels
        for p in range(self.params.i):
            channel = Channel(delay=delay, name="f{}".format(p))
            self.engine.add_channel(channel)
            self.router.attach_forward(p, channel.b)
            self.fwd.append(channel.a)
        for q in range(self.params.o):
            channel = Channel(delay=delay, name="b{}".format(q))
            self.engine.add_channel(channel)
            self.router.attach_backward(q, channel.a)
            self.bwd.append(channel.b)
        self.bwd_log = [[] for _ in range(self.params.o)]
        self.fwd_log = [[] for _ in range(self.params.i)]
        self.bcb_log = [[] for _ in range(self.params.i)]

    def step(self, n=1):
        for _ in range(n):
            self.engine.step()
            for q in range(self.params.o):
                word = self.bwd[q].recv()
                if word is not None:
                    self.bwd_log[q].append(word)
            for p in range(self.params.i):
                word = self.fwd[p].recv()
                if word is not None:
                    self.fwd_log[p].append(word)
                bcb = self.fwd[p].recv_bcb()
                if bcb is not None:
                    self.bcb_log[p].append(bcb)

    def send(self, port, words_list, settle=1):
        for word in words_list:
            self.fwd[port].send(word)
            self.step()
        self.step(settle)

    def downstream_data(self, q):
        return [w.value for w in self.bwd_log[q] if w.kind == W.DATA]

    def upstream_kinds(self, p):
        return [w.kind for w in self.fwd_log[p]]


def test_head_word_routes_and_shifts():
    h = RouterHarness()
    # direction bits = top log2(2) = 1 bit of the head word (dilation 2).
    h.send(0, [W.data(0b10000001)], settle=3)
    q = h.router.connected_backward_port(0)
    assert q in (2, 3)  # direction 1's dilation group
    assert h.downstream_data(q) == [0b00000010]  # shifted left one bit


def test_direction_zero_group():
    h = RouterHarness()
    h.send(1, [W.data(0b00000001)], settle=2)
    assert h.router.connected_backward_port(1) in (0, 1)


def test_swallow_drops_head_word():
    h = RouterHarness()
    h.router.config.swallow = [True] * 4
    h.send(0, [W.data(0b10000000), W.data(0xAB)], settle=3)
    q = h.router.connected_backward_port(0)
    assert h.downstream_data(q) == [0xAB]  # the head word never re-appears


def test_data_pipelines_in_order():
    h = RouterHarness()
    payload = [0x11, 0x22, 0x33, 0x44]
    h.send(0, [W.data(0)] + [W.data(v) for v in payload], settle=4)
    q = h.router.connected_backward_port(0)
    assert h.downstream_data(q) == [0x00] + payload  # shifted head first


def test_bubble_becomes_data_idle_downstream():
    """A silent cycle on an open connection turns into DATA-IDLE."""
    h = RouterHarness()
    h.send(0, [W.data(0)])
    h.step(3)  # no input driven
    q = h.router.connected_backward_port(0)
    kinds = [w.kind for w in h.bwd_log[q]]
    assert W.IDLE in kinds
    assert h.router.connection_state(0) == FORWARD_STATE


def test_dp_pipeline_latency():
    """With dp=3 the head word exits two cycles later than with dp=1."""
    latencies = {}
    for dp in (1, 3):
        params = RouterParameters(i=4, o=4, w=8, max_d=2, dp=dp)
        h = RouterHarness(params=params)
        h.fwd[0].send(W.data(0))
        for cycle in range(1, 12):
            h.step()
            q = h.router.connected_backward_port(0)
            if q is not None and h.bwd_log[q]:
                latencies[dp] = cycle
                break
            h.fwd[0].send(W.data(1))  # keep the connection alive
    assert latencies[3] - latencies[1] == 2


def test_blocked_when_group_full_detailed_reply():
    h = RouterHarness()
    # Occupy both direction-0 outputs.
    h.send(0, [W.data(0)])
    h.send(1, [W.data(0)])
    assert h.router.connection_state(0) == FORWARD_STATE
    assert h.router.connection_state(1) == FORWARD_STATE
    # Third request for direction 0 blocks.
    h.send(2, [W.data(0)], settle=1)
    assert h.router.connection_state(2) == BLOCKED_STATE
    # Send data (swallowed) then TURN: expect STATUS(blocked) + DROP.
    h.send(2, [W.data(0x55), W.TURN_WORD], settle=5)
    reply = h.fwd_log[2]
    assert [w.kind for w in reply] == [W.STATUS, W.DROP]
    assert reply[0].value.blocked is True
    assert h.router.connection_state(2) == IDLE_STATE


def test_blocked_fast_reclaim_sends_bcb():
    h = RouterHarness()
    for port in range(4):
        h.router.config.fast_reclaim[h.router.config.forward_port_id(port)] = True
    h.send(0, [W.data(0)])
    h.send(1, [W.data(0)])
    h.send(2, [W.data(0)], settle=3)
    assert h.bcb_log[2] == [1]
    # The port drains in-flight words, then a DROP releases it.
    h.send(2, [W.DROP_WORD], settle=2)
    assert h.router.connection_state(2) == IDLE_STATE
    # The established connections were untouched.
    assert h.router.connection_state(0) == FORWARD_STATE
    assert h.router.connection_state(1) == FORWARD_STATE


def test_turn_reverses_and_injects_status():
    h = RouterHarness()
    payload = [0xDE, 0xAD]
    h.send(0, [W.data(0)] + [W.data(v) for v in payload] + [W.TURN_WORD], settle=3)
    q = h.router.connected_backward_port(0)
    assert h.router.connection_state(0) == REVERSED_STATE
    # The TURN itself went downstream last.
    assert h.bwd_log[q][-1].kind == W.TURN
    # Downstream replies with a data word.
    h.bwd[q].send(W.data(0x7A))
    h.step(4)
    reply = h.fwd_log[0]
    assert reply[0].kind == W.STATUS
    assert reply[0].value.blocked is False
    # STATUS checksum covers the forwarded words (shifted head + payload).
    assert reply[0].value.checksum == W.checksum_of([0x00] + payload)
    assert reply[0].value.words_forwarded == 3
    data_words = [w.value for w in reply if w.kind == W.DATA]
    assert data_words == [0x7A]


def test_idle_fills_reversal_bubbles():
    h = RouterHarness()
    h.send(0, [W.data(0), W.TURN_WORD], settle=5)
    # No reverse data yet: upstream sees STATUS then DATA-IDLE filler.
    reply = h.fwd_log[0]
    assert reply[0].kind == W.STATUS
    assert len(reply) >= 2
    assert all(w.kind == W.IDLE for w in reply[1:])


def test_double_turn_returns_to_forward():
    h = RouterHarness()
    h.send(0, [W.data(0), W.TURN_WORD], settle=3)
    q = h.router.connected_backward_port(0)
    assert h.router.connection_state(0) == REVERSED_STATE
    # Destination answers then hands the direction back.
    h.bwd[q].send(W.data(0x11))
    h.step()
    marker = len(h.bwd_log[q])
    h.bwd[q].send(W.TURN_WORD)
    h.step(4)
    assert h.router.connection_state(0) == FORWARD_STATE
    # The TURN reached the source side.
    assert h.fwd_log[0][-1].kind == W.TURN
    # Forward data flows again, preceded by a fresh STATUS downstream.
    h.send(0, [W.data(0x42)], settle=3)
    new_words = h.bwd_log[q][marker:]
    kinds = [w.kind for w in new_words]
    assert W.STATUS in kinds
    values = [w.value for w in new_words if w.kind == W.DATA]
    assert 0x42 in values
    assert kinds.index(W.STATUS) < kinds.index(W.DATA)


def test_drop_tears_down_and_frees_port():
    h = RouterHarness()
    h.send(0, [W.data(0), W.data(1)])
    q = h.router.connected_backward_port(0)
    h.send(0, [W.DROP_WORD], settle=2)
    assert h.router.connection_state(0) == IDLE_STATE
    assert h.router.busy_backward_ports() == []
    assert h.bwd_log[q][-1].kind == W.DROP  # teardown propagated
    # The freed output is immediately reusable.
    h.send(1, [W.data(0)])
    h.send(2, [W.data(0)], settle=1)
    assert len(h.router.busy_backward_ports()) == 2


def test_back_to_back_connections_on_same_port():
    h = RouterHarness()
    for round_number in range(3):
        h.send(0, [W.data(0), W.data(round_number)], settle=1)
        assert h.router.connection_state(0) == FORWARD_STATE
        h.send(0, [W.DROP_WORD], settle=2)
        assert h.router.connection_state(0) == IDLE_STATE


def test_watchdog_frees_silent_connection():
    h = RouterHarness(signal_timeout=10)
    h.send(0, [W.data(0)])
    q = h.router.connected_backward_port(0)
    assert q is not None
    h.step(15)  # upstream goes silent
    assert h.router.connection_state(0) == IDLE_STATE
    assert h.router.busy_backward_ports() == []
    assert h.bwd_log[q][-1].kind == W.DROP  # downstream was torn down


def test_watchdog_disabled_with_none():
    h = RouterHarness(signal_timeout=None)
    h.send(0, [W.data(0)])
    h.step(100)
    assert h.router.connection_state(0) == FORWARD_STATE


def test_disabled_forward_port_ignores_traffic():
    h = RouterHarness()
    h.router.config.port_enabled[h.router.config.forward_port_id(0)] = False
    h.send(0, [W.data(0)], settle=2)
    assert h.router.connection_state(0) == IDLE_STATE
    assert h.router.busy_backward_ports() == []


def test_disabled_backward_port_halves_group():
    h = RouterHarness()
    config = h.router.config
    config.port_enabled[config.backward_port_id(0)] = False
    h.send(0, [W.data(0)], settle=1)
    assert h.router.connected_backward_port(0) == 1
    h.send(1, [W.data(0)], settle=1)
    assert h.router.connection_state(1) == BLOCKED_STATE


def test_dilation_one_uses_all_outputs_as_radix_4():
    h = RouterHarness(dilation=1)
    # direction bits = 2, taken from the top of the head word.
    h.send(0, [W.data(0b11000000)], settle=1)
    assert h.router.connected_backward_port(0) == 3


def test_hw1_consumes_header_word():
    params = RouterParameters(i=4, o=4, w=8, max_d=2, hw=1)
    h = RouterHarness(params=params)
    # With hw=1 the direction rides in the LOW bits of the first word.
    h.send(0, [W.data(0b1), W.data(0xCC)], settle=3)
    q = h.router.connected_backward_port(0)
    assert q in (2, 3)
    assert h.downstream_data(q) == [0xCC]  # header word was consumed


def test_hw2_consumes_two_words():
    params = RouterParameters(i=4, o=4, w=8, max_d=2, hw=2)
    h = RouterHarness(params=params)
    h.send(0, [W.data(0), W.data(0), W.data(0x77)], settle=3)
    q = h.router.connected_backward_port(0)
    assert h.downstream_data(q) == [0x77]


def test_status_counts_only_data_words():
    h = RouterHarness()
    h.send(
        0,
        [W.data(0), W.data(1), W.IDLE_WORD, W.data(2), W.TURN_WORD],
        settle=3,
    )
    reply = h.fwd_log[0]
    status = reply[0].value
    # Shifted head + two data words; the IDLE is not counted.
    assert status.words_forwarded == 3


def test_reverse_drop_from_downstream_closes():
    h = RouterHarness()
    h.send(0, [W.data(0), W.TURN_WORD], settle=3)
    q = h.router.connected_backward_port(0)
    h.bwd[q].send(W.data(0x1))
    h.step()
    h.bwd[q].send(W.DROP_WORD)
    h.step(4)
    assert h.fwd_log[0][-1].kind == W.DROP
    assert h.router.connection_state(0) == IDLE_STATE
    assert h.router.busy_backward_ports() == []


def test_source_drop_while_reversed_tears_down_both_sides():
    """A reply timeout at the source closes against the reverse flow."""
    h = RouterHarness()
    h.send(0, [W.data(0), W.TURN_WORD], settle=3)
    q = h.router.connected_backward_port(0)
    assert h.router.connection_state(0) == REVERSED_STATE
    marker = len(h.bwd_log[q])
    h.send(0, [W.DROP_WORD], settle=2)
    assert h.router.connection_state(0) == IDLE_STATE
    assert any(w.kind == W.DROP for w in h.bwd_log[q][marker:])


def test_concurrent_connections_do_not_interfere():
    h = RouterHarness()
    h.send(0, [W.data(0b00000000)])
    h.send(1, [W.data(0b10000000)])
    h.send(2, [W.data(0b00000001)])
    h.send(3, [W.data(0b10000001)], settle=2)
    ports = [h.router.connected_backward_port(p) for p in range(4)]
    assert None not in ports
    assert len(set(ports)) == 4
    assert ports[0] in (0, 1) and ports[2] in (0, 1)
    assert ports[1] in (2, 3) and ports[3] in (2, 3)


def test_drop_then_immediate_new_head_on_same_wire():
    """Regression: a new circuit request one cycle behind a DROP must
    open a fresh connection while the old pipeline drains — no word of
    either stream may be lost (back-to-back connections)."""
    h = RouterHarness()
    # First connection with some payload, closed, and a new head word
    # follows the DROP with NO idle gap on the wire.
    stream = [
        W.data(0b00000000),  # head 1 (direction 0)
        W.data(0x11),
        W.DROP_WORD,
        W.data(0b10000000),  # head 2 (direction 1), right behind
        W.data(0x22),
    ]
    for word in stream:
        h.fwd[0].send(word)
        h.step()
    h.step(4)
    # New connection is live in direction 1.
    q2 = h.router.connected_backward_port(0)
    assert q2 in (2, 3)
    assert h.downstream_data(q2) == [0b00000000, 0x22]  # shifted head 2
    # Old connection delivered everything, including its DROP.
    old_q = [q for q in (0, 1) if h.bwd_log[q]][0]
    kinds = [w.kind for w in h.bwd_log[old_q]]
    assert h.downstream_data(old_q) == [0x00, 0x11]
    assert kinds[-1] == W.DROP
    assert old_q not in h.router.busy_backward_ports()


def test_drop_then_new_head_with_deep_pipeline():
    """Same back-to-back race with dp=3: the old DROP is still three
    stages deep when the new head arrives."""
    params = RouterParameters(i=4, o=4, w=8, max_d=2, dp=3)
    h = RouterHarness(params=params)
    stream = [
        W.data(0b00000000),
        W.data(0x33),
        W.DROP_WORD,
        W.data(0b10000000),
        W.data(0x44),
    ]
    for word in stream:
        h.fwd[0].send(word)
        h.step()
    h.step(8)
    q2 = h.router.connected_backward_port(0)
    assert q2 in (2, 3)
    assert 0x44 in h.downstream_data(q2)
    assert h.router.busy_backward_ports() == [q2]


class TestVariableTurnDelayPorts:
    """Section 5.1: per-port wire depths; turns must work regardless."""

    def _harness_with_mixed_delays(self):
        params = RouterParameters(i=4, o=4, w=8, max_d=2)
        h = RouterHarness.__new__(RouterHarness)
        h.params = params
        config = RouterConfig(params, dilation=2)
        h.router = MetroRouter(
            params, name="dut", config=config, random_stream=RandomStream(7)
        )
        h.engine = Engine()
        h.engine.add_component(h.router)
        h.fwd, h.bwd = [], []
        delays_f = [1, 2, 3, 1]
        delays_b = [3, 1, 2, 1]
        for p in range(4):
            channel = Channel(delay=delays_f[p], name="f{}".format(p))
            h.engine.add_channel(channel)
            h.router.attach_forward(p, channel.b)
            h.fwd.append(channel.a)
            config.set_turn_delay(config.forward_port_id(p), delays_f[p])
        for q in range(4):
            channel = Channel(delay=delays_b[q], name="b{}".format(q))
            h.engine.add_channel(channel)
            h.router.attach_backward(q, channel.a)
            h.bwd.append(channel.b)
            config.set_turn_delay(config.backward_port_id(q), delays_b[q])
        h.bwd_log = [[] for _ in range(4)]
        h.fwd_log = [[] for _ in range(4)]
        h.bcb_log = [[] for _ in range(4)]
        return h

    def test_turn_over_mixed_depth_wires(self):
        h = self._harness_with_mixed_delays()
        h.send(0, [W.data(0), W.data(0xAA), W.TURN_WORD], settle=8)
        q = h.router.connected_backward_port(0)
        assert h.bwd_log[q][-1].kind == W.TURN
        assert h.router.connection_state(0) == REVERSED_STATE
        # Reply over the deep wire still arrives intact.
        h.bwd[q].send(W.data(0x5C))
        h.step(8)
        data_back = [w.value for w in h.fwd_log[0] if w.kind == W.DATA]
        assert data_back == [0x5C]

    def test_each_port_pairing_works(self):
        h = self._harness_with_mixed_delays()
        for p in range(4):
            h.send(p, [W.data(0 if p < 2 else 0x80), W.data(p)], settle=6)
            q = h.router.connected_backward_port(p)
            assert q is not None, p
            assert p in [w.value for w in h.bwd_log[q] if w.kind == W.DATA]
            h.send(p, [W.DROP_WORD], settle=8)
            assert h.router.connection_state(p) == IDLE_STATE
