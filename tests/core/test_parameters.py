"""Table 1 parameters and Table 2 configuration options."""

import pytest

from repro.core.parameters import METROJR, RouterConfig, RouterParameters


class TestRouterParameters:
    def test_metrojr_matches_paper_section_6_1(self):
        # "METROJR is a minimal implementation ... with i = o = w = 4,
        #  hw = 0, dp = 1, and max_d = 2."
        assert METROJR.i == 4
        assert METROJR.o == 4
        assert METROJR.w == 4
        assert METROJR.hw == 0
        assert METROJR.dp == 1
        assert METROJR.max_d == 2

    def test_radix_follows_dilation(self):
        params = RouterParameters(i=8, o=8, w=8, max_d=2)
        assert params.radix(1) == 8
        assert params.radix(2) == 4
        assert params.direction_bits(2) == 2
        assert params.direction_bits(1) == 3

    def test_radix_rejects_excess_dilation(self):
        with pytest.raises(ValueError):
            RouterParameters(i=4, o=4, w=4, max_d=2).radix(4)

    @pytest.mark.parametrize("bad", [3, 5, 6, 7, 0])
    def test_ports_must_be_powers_of_two(self, bad):
        with pytest.raises(ValueError):
            RouterParameters(i=bad, o=4, w=4, max_d=2)
        with pytest.raises(ValueError):
            RouterParameters(i=4, o=bad, w=4, max_d=2)

    def test_w_must_cover_log2_o(self):
        # Table 1: w >= log2(o).
        with pytest.raises(ValueError):
            RouterParameters(i=8, o=8, w=2, max_d=2)
        RouterParameters(i=8, o=8, w=3, max_d=2)  # exactly log2(8) is fine

    def test_max_d_bounded_by_o(self):
        with pytest.raises(ValueError):
            RouterParameters(i=4, o=4, w=4, max_d=8)

    def test_dp_and_hw_bounds(self):
        with pytest.raises(ValueError):
            RouterParameters(i=4, o=4, w=4, max_d=2, dp=0)
        with pytest.raises(ValueError):
            RouterParameters(i=4, o=4, w=4, max_d=2, hw=-1)
        RouterParameters(i=4, o=4, w=4, max_d=2, hw=0, dp=1)

    def test_equality(self):
        assert RouterParameters() == RouterParameters()
        assert RouterParameters(hw=1) != RouterParameters(hw=0)


class TestRouterConfig:
    def test_default_dilation_is_max(self):
        config = RouterConfig(METROJR)
        assert config.dilation == METROJR.max_d

    def test_dilation_configurable_to_powers_of_two(self):
        # Section 5.1: "the effective dilation of a METRO router may be
        # configured to any power of two up to ... max_d."
        config = RouterConfig(METROJR)
        config.dilation = 1
        assert config.radix == 4
        config.dilation = 2
        assert config.radix == 2
        with pytest.raises(ValueError):
            config.dilation = 4
        with pytest.raises(ValueError):
            config.dilation = 3

    def test_backward_groups_partition_ports(self):
        params = RouterParameters(i=8, o=8, w=8, max_d=2)
        config = RouterConfig(params, dilation=2)
        groups = [config.backward_group(g) for g in range(config.radix)]
        flat = [p for group in groups for p in group]
        assert sorted(flat) == list(range(8))
        assert all(len(group) == 2 for group in groups)

    def test_backward_group_bounds(self):
        config = RouterConfig(METROJR, dilation=2)
        with pytest.raises(ValueError):
            config.backward_group(2)  # radix is 2: directions 0..1

    def test_port_id_spaces(self):
        config = RouterConfig(METROJR)
        assert config.forward_port_id(0) == 0
        assert config.forward_port_id(3) == 3
        assert config.backward_port_id(0) == 4
        assert config.backward_port_id(3) == 7
        with pytest.raises(IndexError):
            config.forward_port_id(4)
        with pytest.raises(IndexError):
            config.backward_port_id(4)

    def test_turn_delay_bounded_by_max_vtd(self):
        params = RouterParameters(i=4, o=4, w=4, max_d=2, max_vtd=3)
        config = RouterConfig(params)
        config.set_turn_delay(0, 3)
        with pytest.raises(ValueError):
            config.set_turn_delay(0, 4)

    def test_table2_instance_counts(self):
        config = RouterConfig(METROJR)
        nports = METROJR.i + METROJR.o
        assert len(config.port_enabled) == nports
        assert len(config.off_port_drive) == nports
        assert len(config.turn_delay) == nports
        assert len(config.fast_reclaim) == nports
        assert len(config.swallow) == METROJR.i  # forward ports only

    def test_config_bit_count_positive_and_scales(self):
        small = RouterConfig(METROJR).config_bit_count()
        big = RouterConfig(RouterParameters(i=8, o=8, w=8, max_d=2)).config_bit_count()
        assert small > 0
        assert big > small
