"""Dilated crossbar allocation: random selection among free equivalents."""

import pytest

from repro.core.crossbar import (
    CrossbarAllocator,
    FIRST_FREE,
    RANDOM,
    ROUND_ROBIN,
)
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import RandomStream, SharedRandomBus


def _allocator(dilation=2, policy=RANDOM, seed=0, o=8):
    params = RouterParameters(i=o, o=o, w=8, max_d=dilation)
    config = RouterConfig(params, dilation=dilation)
    return CrossbarAllocator(config, RandomStream(seed), policy=policy)


def test_allocation_lands_in_requested_group():
    alloc = _allocator()
    for direction in range(4):
        port = alloc.allocate(direction)
        assert port in alloc.config.backward_group(direction)


def test_group_exhaustion_blocks():
    alloc = _allocator(dilation=2)
    assert alloc.allocate(0) is not None
    assert alloc.allocate(0) is not None
    assert alloc.allocate(0) is None  # both dilated outputs claimed
    assert alloc.allocate(1) is not None  # other directions unaffected


def test_release_returns_port_to_pool():
    alloc = _allocator(dilation=2)
    first = alloc.allocate(0)
    second = alloc.allocate(0)
    assert alloc.allocate(0) is None
    alloc.release(first)
    assert alloc.allocate(0) == first
    alloc.release(second)
    assert second in alloc.free_ports(0)


def test_double_release_rejected():
    alloc = _allocator()
    port = alloc.allocate(0)
    alloc.release(port)
    with pytest.raises(ValueError):
        alloc.release(port)


def test_disabled_ports_never_allocated():
    alloc = _allocator(dilation=2)
    config = alloc.config
    group = config.backward_group(0)
    config.port_enabled[config.backward_port_id(group[0])] = False
    for _ in range(10):
        port = alloc.allocate(0)
        if port is None:
            break
        assert port == group[1]
        alloc.release(port)


def test_all_disabled_blocks():
    alloc = _allocator(dilation=2)
    config = alloc.config
    for port in config.backward_group(1):
        config.port_enabled[config.backward_port_id(port)] = False
    assert alloc.allocate(1) is None


def test_random_selection_covers_all_equivalents():
    """Random choice must actually spread across the dilation group."""
    counts = {}
    alloc = _allocator(dilation=2, seed=42)
    for _ in range(200):
        port = alloc.allocate(0)
        counts[port] = counts.get(port, 0) + 1
        alloc.release(port)
    assert len(counts) == 2
    # Neither port starves: crude two-sided check on a fair coin.
    assert min(counts.values()) > 50


def test_first_free_is_deterministic():
    alloc = _allocator(policy=FIRST_FREE)
    group = alloc.config.backward_group(0)
    for _ in range(5):
        port = alloc.allocate(0)
        assert port == group[0]
        alloc.release(port)


def test_round_robin_rotates():
    alloc = _allocator(policy=ROUND_ROBIN)
    seen = []
    for _ in range(4):
        port = alloc.allocate(0)
        seen.append(port)
        alloc.release(port)
    assert len(set(seen)) == 2  # alternates across the group


def test_unknown_policy_rejected():
    params = RouterParameters()
    config = RouterConfig(params)
    with pytest.raises(ValueError):
        CrossbarAllocator(config, RandomStream(0), policy="bogus")


def test_shared_randomness_gives_identical_choices():
    """Two allocators on one shared bus mirror each other exactly —
    the width-cascading requirement of Section 5.1."""
    bus = SharedRandomBus(seed=7)
    left = _allocator(dilation=2)
    right = _allocator(dilation=2)
    left.random_stream = bus
    right.random_stream = bus
    for cycle in range(50):
        bus.begin_cycle(cycle)
        direction = cycle % 4
        a = left.allocate(direction, decision_key=0)
        b = right.allocate(direction, decision_key=0)
        assert a == b
        left.release(a)
        right.release(b)


def test_occupancy_tracks_claims():
    alloc = _allocator()
    assert alloc.occupancy() == 0
    p = alloc.allocate(2)
    assert alloc.occupancy() == 1
    assert alloc.in_use(p)
    alloc.release(p)
    assert alloc.occupancy() == 0
