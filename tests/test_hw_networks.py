"""Setup-pipelined (hw >= 1) networks under stress and faults.

The hw = 0 path gets most of the integration mileage; these tests put
the hw = 1 and hw = 2 router variants through the same contention,
fault and sustained-traffic situations.
"""

import pytest

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import DELIVERED, Message
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector, router_to_router_channels
from repro.faults.model import CorruptLink, DeadLink, DeadRouter
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec


def hw_plan(hw):
    params = RouterParameters(i=4, o=4, w=4, max_d=2, hw=hw)
    return NetworkPlan(
        16,
        2,
        2,
        [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
    )


@pytest.mark.parametrize("hw", [1, 2])
class TestHwUnderStress:
    def test_hotspot_contention(self, hw):
        network = build_network(hw_plan(hw), seed=71)
        messages = [
            network.send(src, Message(dest=0, payload=[src]))
            for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=100000)
        assert all(m.outcome == DELIVERED for m in messages)

    def test_fast_reclaim_mode(self, hw):
        network = build_network(hw_plan(hw), seed=72, fast_reclaim=True)
        messages = [
            network.send(src, Message(dest=0, payload=[src]))
            for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=100000)
        assert all(m.outcome == DELIVERED for m in messages)
        assert network.log.attempt_failures.get("blocked-fast", 0) > 0

    def test_dead_router_routed_around(self, hw):
        network = build_network(hw_plan(hw), seed=73)
        FaultInjector(network).now(DeadRouter(1, 0, 1))
        messages = [
            network.send(src, Message(dest=(src + 3) % 16, payload=[src]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=120000)
        assert all(m.outcome == DELIVERED for m in messages)

    def test_corrupt_header_word_detected(self, hw):
        """Corruption of a consumed header word misroutes; the wrong
        destination nacks and the retry recovers."""
        network = build_network(hw_plan(hw), seed=74)
        for src_key, dst_key in router_to_router_channels(network):
            if src_key[1] == 0:
                FaultInjector(network).now(
                    CorruptLink(
                        src_key=src_key, dst_key=dst_key,
                        probability=0.4, mask=0x3, seed=7,
                    )
                )
        messages = [
            network.send(src, Message(dest=(src + 5) % 16, payload=[1, 2, 3]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=200000)
        assert all(m.outcome == DELIVERED for m in messages)

    def test_sustained_traffic_no_leaks(self, hw):
        network = build_network(hw_plan(hw), seed=75, fast_reclaim=True)
        traffic = UniformRandomTraffic(16, 4, rate=0.04, message_words=6, seed=8)
        traffic.attach(network)
        network.run(3000)
        for endpoint in network.endpoints:
            endpoint.traffic_source = None
        assert network.run_until_quiet(max_cycles=50000)
        for router in network.all_routers():
            assert router.busy_backward_ports() == []
        assert len(network.log.delivered()) > 50
        assert network.log.abandoned() == []


def test_header_length_grows_with_hw():
    for hw in (1, 2):
        network = build_network(hw_plan(hw), seed=76)
        assert network.codec.header_length() == hw * 3  # hw words x stages
