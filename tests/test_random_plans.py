"""Property test: any valid random plan wires, validates, and delivers.

The strongest integration property in the suite: generate random but
consistent network plans (random stage radices, dilations, widths,
endpoint multiplicities), build them, lint them, and push a message
through.  Anything the plan constructor accepts must produce a working
network.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec
from repro.network.validate import validate_network
from repro.verify import attach_oracle


@st.composite
def plans(draw):
    """A random consistent NetworkPlan (kept small for speed)."""
    w = draw(st.sampled_from([4, 8]))
    n_stages = draw(st.integers(min_value=1, max_value=4))
    stages = []
    product = 1
    for _ in range(n_stages):
        ports = draw(st.sampled_from([2, 4, 8]))
        max_d = min(ports, 2)
        dilation = draw(st.sampled_from([1, max_d]))
        params = RouterParameters(i=ports, o=ports, w=w, max_d=max_d)
        stages.append(StageSpec(params, dilation))
        product *= params.radix(dilation)
    if product > 64:
        # Keep simulations small.
        return None
    n_endpoints = product
    # Endpoint multiplicity must satisfy wire conservation at every
    # stage; try small values and keep the first that validates.
    for m in (1, 2, 4, 8):
        try:
            return NetworkPlan(n_endpoints, m, _derived_in(stages, n_endpoints, m), stages)
        except ValueError:
            continue
    return None


def _derived_in(stages, n_endpoints, m):
    wires = n_endpoints * m
    blocks = 1
    for stage in stages:
        per_block = wires // blocks
        if wires % blocks or per_block % stage.params.i:
            raise ValueError("inconsistent")
        routers = per_block // stage.params.i
        wires = blocks * stage.radix * routers * stage.dilation
        blocks *= stage.radix
    if wires % n_endpoints:
        raise ValueError("inconsistent")
    return wires // n_endpoints


@given(plans(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_random_plan_builds_and_delivers(plan, seed):
    if plan is None:
        return
    network = build_network(plan, seed=seed)
    assert validate_network(network) == []
    oracle = attach_oracle(network)
    src = seed % plan.n_endpoints
    dest = (seed // 7) % plan.n_endpoints
    message = network.send(src, Message(dest=dest, payload=[1, 2, 3]))
    assert network.run_until_quiet(max_cycles=30000)
    assert message.outcome == DELIVERED
    # And the network is clean afterwards: no busy ports, and the
    # per-cycle conformance oracle saw nothing illegal on the way.
    for router in network.all_routers():
        assert router.busy_backward_ports() == []
    oracle.check_quiescent(network.engine.cycle)
    oracle.assert_clean()
