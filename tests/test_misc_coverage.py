"""Smaller behaviours and error paths across modules."""

import pytest

from repro.core import words as W


class TestFaultModelErrors:
    def test_dead_link_needs_identification(self):
        from repro.faults.model import CorruptLink, DeadLink

        with pytest.raises(ValueError):
            DeadLink()
        with pytest.raises(ValueError):
            CorruptLink()

    def test_base_fault_abstract(self):
        from repro.faults.model import Fault

        with pytest.raises(NotImplementedError):
            Fault().apply(None)
        with pytest.raises(NotImplementedError):
            Fault().revert(None)

    def test_describe_strings(self):
        from repro.faults.model import DeadRouter, DisabledPort

        assert "r1.2.3" in DeadRouter(1, 2, 3).describe()
        assert "port 5" in DisabledPort(0, 0, 0, 5).describe()


class TestWormholeErrors:
    def test_dilation_must_divide(self):
        from repro.baseline.wormhole import WormholeRouter

        with pytest.raises(ValueError):
            WormholeRouter(i=4, o=4, dilation=3)

    def test_flit_repr(self):
        from repro.baseline.wormhole import Flit, HEAD

        assert "head" in repr(Flit(HEAD, 3))

    def test_packet_latency_none_until_done(self):
        from repro.baseline.wormhole import Packet

        packet = Packet((0, 0), 3, [1])
        assert packet.latency is None
        assert packet.total_latency is None


class TestCascadedNetworkMisc:
    def test_width_one_allowed(self):
        from repro.network.cascaded import CascadedNetwork
        from repro.network.topology import figure1_plan

        network = CascadedNetwork(figure1_plan(), c=1, seed=2)
        assert network.wide_width == 4
        wide = network.send_wide(0, 5, [0xF])
        assert network.run_until_quiet(max_cycles=5000)
        assert wide.outcome == "delivered"

    def test_width_zero_rejected(self):
        from repro.network.cascaded import CascadedNetwork
        from repro.network.topology import figure1_plan

        with pytest.raises(ValueError):
            CascadedNetwork(figure1_plan(), c=0)

    def test_wide_message_latency_none_in_flight(self):
        from repro.network.cascaded import CascadedNetwork
        from repro.network.topology import figure1_plan

        network = CascadedNetwork(figure1_plan(), c=2, seed=3)
        wide = network.send_wide(0, 5, [0x11])
        assert wide.outcome is None
        assert wide.latency is None
        network.run_until_quiet(max_cycles=5000)
        assert wide.latency is not None


class TestWaveformPathHelper:
    def test_record_path_names_hops(self):
        from repro.network.builder import build_network
        from repro.network.topology import figure1_plan
        from repro.sim.waveform import record_path

        network = build_network(figure1_plan(), seed=4)
        keys = list(network.channels)[:3]
        recorder = record_path(network, keys, max_cycles=16)
        network.run(4)
        assert set(recorder.lanes) == {
            "hop0 >", "hop0 <", "hop1 >", "hop1 <", "hop2 >", "hop2 <"
        }


class TestScanControllerMisc:
    def test_write_config_bits_roundtrip(self):
        from repro.core.parameters import METROJR
        from repro.core.router import MetroRouter
        from repro.scan import registers as R
        from repro.scan.controller import ScanController

        router = MetroRouter(METROJR, name="w")
        scan = ScanController(router)
        bits = R.encode_config(router.config)
        bits[0] = 0  # disable forward port 0
        scan.write_config_bits(bits)
        assert not router.config.port_enabled[0]

    def test_sample_boundary_on_live_network_port(self):
        from repro.endpoint.messages import Message
        from repro.network.builder import build_network
        from repro.network.topology import figure1_plan
        from repro.scan.controller import ScanController

        network = build_network(figure1_plan(), seed=5)
        network.send(0, Message(dest=9, payload=[0xB]))
        network.run(3)  # header in flight somewhere in stage 0
        saw = []
        for router in network.routers[0]:
            saw.extend(ScanController(router).sample_boundary())
        assert any(value != 0 for value in saw)


class TestComponentBase:
    def test_tick_abstract(self):
        from repro.sim.component import Component

        with pytest.raises(NotImplementedError):
            Component().tick(0)

    def test_repr(self):
        from repro.sim.component import Component

        class Thing(Component):
            name = "thing"

            def tick(self, cycle):
                pass

        assert "thing" in repr(Thing())


class TestChannelEndMisc:
    def test_invalid_side_rejected(self):
        from repro.sim.channel import Channel, ChannelEnd

        with pytest.raises(ValueError):
            ChannelEnd(Channel(), "c")

    def test_delay_property(self):
        from repro.sim.channel import Channel

        assert Channel(delay=3).a.delay == 3

    def test_repr(self):
        from repro.sim.channel import Channel

        channel = Channel(name="x")
        assert "x.a" in repr(channel.a)


class TestWordHelpers:
    def test_status_repr(self):
        status = W.status(False, 0xAB, 7, "r0")
        assert "r0" in repr(status.value)

    def test_word_repr(self):
        assert "0xa" in repr(W.data(0xA))
        assert "turn" in repr(W.TURN_WORD)
