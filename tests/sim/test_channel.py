"""Channel pipeline semantics: wires are shift registers."""

import pytest

from repro.core import words as W
from repro.sim.channel import Channel


def test_delay_one_word_arrives_next_cycle():
    channel = Channel(delay=1)
    channel.a.send(W.data(5))
    assert channel.b.recv() is None  # not visible until the clock edge
    channel.advance()
    assert channel.b.recv() == W.data(5)
    channel.advance()
    assert channel.b.recv() is None


@pytest.mark.parametrize("delay", [1, 2, 3, 7])
def test_delay_n_takes_n_cycles(delay):
    channel = Channel(delay=delay)
    channel.a.send(W.data(9))
    for _ in range(delay - 1):
        channel.advance()
        assert channel.b.recv() is None
    channel.advance()
    assert channel.b.recv() == W.data(9)


def test_streams_stay_in_order():
    channel = Channel(delay=2)
    received = []
    for value in range(5):
        channel.a.send(W.data(value))
        channel.advance()
        word = channel.b.recv()
        if word is not None:
            received.append(word.value)
    for _ in range(2):
        channel.advance()
        word = channel.b.recv()
        if word is not None:
            received.append(word.value)
    assert received == [0, 1, 2, 3, 4]


def test_directions_are_independent():
    channel = Channel(delay=1)
    channel.a.send(W.data(1))
    channel.b.send(W.data(2))
    channel.advance()
    assert channel.b.recv() == W.data(1)
    assert channel.a.recv() == W.data(2)


def test_bcb_travels_opposite_to_data():
    channel = Channel(delay=3)
    channel.b.send_bcb(1)
    for _ in range(2):
        channel.advance()
        assert channel.a.recv_bcb() is None
    channel.advance()
    assert channel.a.recv_bcb() == 1
    channel.advance()
    assert channel.a.recv_bcb() is None


def test_bcb_does_not_leak_to_sender_side():
    channel = Channel(delay=1)
    channel.b.send_bcb(4)
    channel.advance()
    assert channel.b.recv_bcb() is None
    assert channel.a.recv_bcb() == 4


def test_dead_channel_delivers_nothing():
    channel = Channel(delay=1)
    channel.a.send(W.data(1))
    channel.b.send_bcb(1)
    channel.dead = True
    channel.advance()
    assert channel.b.recv() is None
    assert channel.a.recv_bcb() is None


def test_fault_transform_applies_on_delivery():
    channel = Channel(delay=1)
    channel.fault_a_to_b = lambda word: W.data(word.value ^ 0xF) if word.kind == W.DATA else word
    channel.a.send(W.data(0b1010))
    channel.advance()
    assert channel.b.recv() == W.data(0b0101)
    # The reverse direction is untouched.
    channel.b.send(W.data(0b1010))
    channel.advance()
    assert channel.a.recv() == W.data(0b1010)


def test_delay_zero_rejected():
    with pytest.raises(ValueError):
        Channel(delay=0)


def test_in_flight_counts_both_directions():
    channel = Channel(delay=2)
    channel.a.send(W.data(1))
    channel.b.send(W.data(2))
    channel.advance()
    assert channel.in_flight() == 2


class TestHalfDuplexMonitor:
    def test_data_collision_counted(self):
        channel = Channel(delay=1)
        channel.a.send(W.data(1))
        channel.b.send(W.data(2))
        channel.advance()
        assert channel.half_duplex_violations == 1

    def test_control_against_flow_exempt(self):
        channel = Channel(delay=1)
        channel.a.send(W.data(1))
        channel.b.send(W.DROP_WORD)  # abort signaling: allowed
        channel.advance()
        assert channel.half_duplex_violations == 0

    def test_bcb_sideband_exempt(self):
        channel = Channel(delay=1)
        channel.a.send(W.data(1))
        channel.b.send_bcb(1)
        channel.advance()
        assert channel.half_duplex_violations == 0

    def test_alternating_directions_clean(self):
        channel = Channel(delay=1)
        channel.a.send(W.data(1))
        channel.advance()
        channel.b.send(W.data(2))
        channel.advance()
        assert channel.half_duplex_violations == 0
