"""Vector (structure-of-arrays) backend: surface and safety nets.

The deep equivalence claims live in ``repro.verify.backend_diff`` and
the property tests; this module pins the backend's *surface*: registry
wiring, the SoA mirror actually mirroring the wires, snapshot
transmutation in and out of the backend, the degrade-to-dense guard
for foreign components, idle-run compression, and the optional-JIT
import guard falling back cleanly when numba is absent.
"""

import os
import subprocess
import sys

import pytest

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure1_network
from repro.sim.backends import BACKENDS, make_engine
from repro.sim.component import Component
from repro.sim.snapshot import restore_network, snapshot_network
from repro.sim.vector import (
    JIT_ACTIVE,
    JIT_REQUESTED,
    KIND_BCB,
    KIND_CODES,
    VectorEngine,
)
from repro.verify.backend_diff import message_fingerprint

np = pytest.importorskip("numpy")


def _loaded_network(backend, seed=11, rate=0.02, cycles=0):
    network = figure1_network(seed=seed, backend=backend)
    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=rate,
        message_words=12,
        seed=seed + 1,
    ).attach(network)
    if cycles:
        network.run(cycles)
    return network


def test_vector_backend_is_registered():
    assert BACKENDS["vector"] is VectorEngine
    assert isinstance(make_engine("vector"), VectorEngine)


def test_soa_mirror_tracks_the_wires_mid_run():
    network = _loaded_network("vector", cycles=157)
    engine = network.engine
    assert not engine.degraded
    # Paused mid-run, the head-kind mirror must agree with the actual
    # Word objects at every pipe head: the arrays are a cache of the
    # wires, never an alternative truth.
    for channel, crec in engine._crecs.items():
        base, pipes = crec[1], crec[2]
        for k, pipe in enumerate(pipes):
            head = pipe.slots[-1]
            mirrored = engine._headk[base + k]
            if head is None:
                assert mirrored == 0, (channel.name, k)
            elif k >= 2:
                assert mirrored == KIND_BCB, (channel.name, k)
            else:
                assert mirrored == KIND_CODES[head.kind], (channel.name, k)


def test_loaded_run_matches_reference():
    reference = _loaded_network("reference", cycles=400)
    vector = _loaded_network("vector", cycles=400)
    assert message_fingerprint(vector.log) == message_fingerprint(
        reference.log
    )


@pytest.mark.parametrize("restore_backend", sorted(BACKENDS))
def test_snapshot_transmutes_from_vector(restore_backend):
    # A snapshot captured under the vector backend restores under any
    # backend and finishes on the reference trajectory: the SoA mirror
    # is transient state, rebuilt rather than serialized.
    expected = message_fingerprint(_loaded_network("vector", cycles=400).log)
    network = _loaded_network("vector", cycles=150)
    snap = snapshot_network(network)
    restored = restore_network(snap, backend=restore_backend).network
    assert type(restored.engine) is type(make_engine(restore_backend))
    restored.run(250)
    assert message_fingerprint(restored.log) == expected


class _ForeignComponent(Component):
    name = "foreign"

    def __init__(self):
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1


def test_foreign_component_degrades_to_dense():
    network = _loaded_network("vector")
    foreign = network.engine.add_component(_ForeignComponent())
    network.run(300)
    assert network.engine.degraded
    assert foreign.ticks == 300
    assert message_fingerprint(network.log) == message_fingerprint(
        _loaded_network("reference", cycles=300).log
    )


def test_idle_network_compresses():
    network = figure1_network(seed=11, backend="vector")
    network.run(20000)
    assert network.engine.cycle == 20000
    assert network.engine.compressed_cycles > 0.9 * 20000


def test_jit_disabled_by_default():
    if not os.environ.get("REPRO_JIT"):
        assert not JIT_REQUESTED
        assert not JIT_ACTIVE


def test_jit_request_falls_back_cleanly_without_numba():
    # REPRO_JIT=1 must never be able to break an import: with numba
    # absent the pure-python roll stays in place, and with it present
    # the jitted roll is byte-equivalent (the equivalence families run
    # either way).  Proven in a subprocess so the env var matters.
    env = dict(os.environ, REPRO_JIT="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    code = (
        "from repro.sim import vector\n"
        "from repro.harness.load_sweep import figure1_network\n"
        "from repro.endpoint.traffic import UniformRandomTraffic\n"
        "assert vector.JIT_REQUESTED\n"
        "n = figure1_network(seed=11, backend='vector')\n"
        "UniformRandomTraffic(n_endpoints=n.plan.n_endpoints,"
        " w=n.codec.w, rate=0.02, message_words=12, seed=12).attach(n)\n"
        "n.run(200)\n"
        "print(n.log.receiver_deliveries)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
    )
    assert proc.returncode == 0, proc.stderr
    expected = _loaded_network("reference", cycles=200).log
    assert int(proc.stdout.strip()) == expected.receiver_deliveries
