"""Waveform capture and rendering."""

import pytest

from repro.core import words as W
from repro.sim.channel import Channel
from repro.sim.engine import Engine
from repro.sim.waveform import WaveformRecorder


def _recorded_session():
    engine = Engine()
    channel = Channel(delay=1, name="wire")
    engine.add_channel(channel)
    recorder = WaveformRecorder({"wire": channel})
    engine.add_component(recorder)
    script = [W.data(0xA), W.data(0xB), W.IDLE_WORD, W.TURN_WORD]
    for word in script:
        channel.a.send(word)
        engine.step()
    engine.step()
    # One reverse word.
    channel.b.send(W.DROP_WORD)
    engine.step()
    engine.step()
    return recorder


def test_lane_contents():
    recorder = _recorded_session()
    forward = recorder.lanes["wire >"]
    kinds = [getattr(w, "kind", None) for w in forward]
    assert "data" in kinds and "turn" in kinds and "idle" in kinds
    reverse = recorder.lanes["wire <"]
    assert any(getattr(w, "kind", None) == "drop" for w in reverse)


def test_ascii_diagram_glyphs():
    recorder = _recorded_session()
    text = recorder.ascii_diagram()
    lines = text.splitlines()
    assert lines[0].strip().startswith("cycle")
    forward_line = next(l for l in lines if "wire >" in l)
    assert "D" in forward_line
    assert "T" in forward_line
    assert "i" in forward_line
    reverse_line = next(l for l in lines if "wire <" in l)
    assert "X" in reverse_line
    assert "legend" not in text  # legend is glyph text, not the word
    assert "D=data" in text


def test_ascii_window():
    recorder = _recorded_session()
    text = recorder.ascii_diagram(start=0, end=2, legend=False)
    forward_line = next(l for l in text.splitlines() if "wire >" in l)
    # Two cycles only -> exactly two glyph columns after the label.
    assert len(forward_line.split("  ")[-1]) == 2


def test_max_cycles_bounds_recording():
    engine = Engine()
    channel = Channel(name="wire")
    engine.add_channel(channel)
    recorder = WaveformRecorder({"wire": channel}, max_cycles=5)
    engine.add_component(recorder)
    engine.run(20)
    assert len(recorder.lanes["wire >"]) == 5


def test_vcd_structure():
    recorder = _recorded_session()
    vcd = recorder.to_vcd()
    assert "$timescale 1 ns $end" in vcd
    assert "$enddefinitions $end" in vcd
    assert "$var wire 8" in vcd
    assert "#0" in vcd
    # Data value 0x0A appears as its binary byte.
    assert "b{:08b}".format(0x0A) in vcd


def test_vcd_only_emits_changes():
    engine = Engine()
    channel = Channel(name="wire")
    engine.add_channel(channel)
    recorder = WaveformRecorder({"wire": channel})
    engine.add_component(recorder)
    engine.run(10)  # completely quiet
    vcd = recorder.to_vcd()
    # One initial 'z' per lane at #0 and nothing else.
    assert vcd.count("#") == 1
