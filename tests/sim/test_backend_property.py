"""Property tests over the three-backend matrix.

Two claims, both over *random* scenarios rather than curated seeds:

* every backend — dense reference, event-driven, vectorized — walks a
  random workload to the identical observable trajectory (message
  fingerprints, outcomes, oracle verdicts); and
* a mid-run snapshot taken under any backend restores and finishes
  under any backend (the full 3x3 matrix) to exactly the trajectory of
  the matching uninterrupted run.

The seeded equivalence families in ``repro.verify.backend_diff`` pin
curated workloads byte-for-byte; this module lets hypothesis hunt the
scenario space between them.  The 3x3 restore matrix is slow-marked:
nine half-runs per example is sweep-scale work.
"""

import pickle

import pytest

from repro.sim.snapshot import restore_network, snapshot_network
from repro.verify.backend_diff import message_fingerprint
from repro.verify.resume_diff import _finish_scenario, _start_scenario
from repro.verify.scenario import random_scenario

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

BACKENDS = ("reference", "events", "vector")


def _full_run(scenario, backend):
    network, oracle, sent = _start_scenario(scenario, backend)
    result = _finish_scenario(network, oracle, sent)
    result["messages"] = message_fingerprint(network.log)
    result["cycle_quiet"] = network.engine.cycle
    return result


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_scenarios_identical_across_backends(seed):
    scenario = random_scenario(seed=seed, n_messages=2)
    reference, events, vector = (
        _full_run(scenario, backend) for backend in BACKENDS
    )
    assert events == reference
    assert vector == reference


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    split=st.integers(min_value=0, max_value=60),
)
def test_snapshot_restore_full_backend_matrix(seed, split):
    scenario = random_scenario(seed=seed, n_messages=2)
    reference = _full_run(scenario, "reference")
    # First-quiet detection shifts by a cycle when a run() boundary
    # lands after quiescence (see _finish_scenario); every remaining
    # field is event-stamped, so the trajectory stays exactly pinned.
    del reference["cycle_quiet"]

    for capture_backend in BACKENDS:
        network, oracle, sent = _start_scenario(scenario, capture_backend)
        network.run(split)
        at_capture = message_fingerprint(network.log)
        snap = pickle.loads(
            pickle.dumps(
                snapshot_network(
                    network, extras={"oracle": oracle, "sent": sent}
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        for restore_backend in BACKENDS:
            restored = restore_network(snap, backend=restore_backend)
            assert restored.network.engine.cycle == split
            assert (
                message_fingerprint(restored.network.log) == at_capture
            ), (capture_backend, restore_backend)
            resumed = _finish_scenario(
                restored.network,
                restored.extras["oracle"],
                restored.extras["sent"],
            )
            resumed["messages"] = message_fingerprint(restored.network.log)
            assert resumed == reference, (capture_backend, restore_backend)
        # The capture itself must not perturb the original run.
        original = _finish_scenario(network, oracle, sent)
        original["messages"] = message_fingerprint(network.log)
        assert original == reference, capture_backend
