"""Trace collection."""

from repro.sim.trace import Trace, TraceEvent


def test_records_events_and_counts():
    trace = Trace()
    trace.record(1, "r0", "conn-open", (0, 1))
    trace.record(2, "r0", "conn-drop", (0, 1))
    trace.record(3, "r1", "conn-open", (2, 3))
    assert trace.counts["conn-open"] == 2
    assert trace.counts["conn-drop"] == 1
    assert len(trace.events) == 3
    assert [e.cycle for e in trace.of_kind("conn-open")] == [1, 3]


def test_enabled_kinds_filter():
    trace = Trace(enabled_kinds={"conn-open"})
    trace.record(1, "r0", "conn-open")
    trace.record(2, "r0", "conn-drop")
    assert trace.counts == {"conn-open": 1}
    assert len(trace.events) == 1


def test_counters_without_event_retention():
    trace = Trace(keep_events=False)
    for cycle in range(100):
        trace.record(cycle, "r0", "tick")
    assert trace.counts["tick"] == 100
    assert trace.events == []


def test_clear():
    trace = Trace()
    trace.record(1, "x", "y")
    trace.clear()
    assert trace.events == []
    assert trace.counts == {}


def test_event_repr_is_readable():
    event = TraceEvent(5, "r1.0.2", "conn-blocked", (3, "fast"))
    text = repr(event)
    assert "r1.0.2" in text and "conn-blocked" in text
