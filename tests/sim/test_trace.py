"""Trace collection."""

from repro.sim.trace import Trace, TraceEvent


def test_records_events_and_counts():
    trace = Trace()
    trace.record(1, "r0", "conn-open", (0, 1))
    trace.record(2, "r0", "conn-drop", (0, 1))
    trace.record(3, "r1", "conn-open", (2, 3))
    assert trace.counts["conn-open"] == 2
    assert trace.counts["conn-drop"] == 1
    assert len(trace.events) == 3
    assert [e.cycle for e in trace.of_kind("conn-open")] == [1, 3]


def test_enabled_kinds_filter():
    trace = Trace(enabled_kinds={"conn-open"})
    trace.record(1, "r0", "conn-open")
    trace.record(2, "r0", "conn-drop")
    assert trace.counts == {"conn-open": 1}
    assert len(trace.events) == 1


def test_counters_without_event_retention():
    trace = Trace(keep_events=False)
    for cycle in range(100):
        trace.record(cycle, "r0", "tick")
    assert trace.counts["tick"] == 100
    assert trace.events == []


def test_clear():
    trace = Trace()
    trace.record(1, "x", "y")
    trace.clear()
    assert trace.events == []
    assert trace.counts == {}


def test_event_repr_is_readable():
    event = TraceEvent(5, "r1.0.2", "conn-blocked", (3, "fast"))
    text = repr(event)
    assert "r1.0.2" in text and "conn-blocked" in text


def test_of_kind_uses_index_after_interleaved_records():
    trace = Trace()
    for cycle in range(50):
        trace.record(cycle, "r0", "a" if cycle % 3 else "b")
    assert [e.cycle for e in trace.of_kind("b")] == list(range(0, 50, 3))
    assert len(trace.of_kind("a")) + len(trace.of_kind("b")) == 50
    assert trace.of_kind("missing") == []


def test_max_events_ring_buffer_evicts_oldest():
    trace = Trace(max_events=10)
    for cycle in range(25):
        trace.record(cycle, "r0", "even" if cycle % 2 == 0 else "odd")
    assert len(trace.events) == 10
    assert trace.dropped_events == 15
    assert [e.cycle for e in trace.events] == list(range(15, 25))
    # The per-kind index mirrors the eviction exactly.
    assert [e.cycle for e in trace.of_kind("even")] == [16, 18, 20, 22, 24]
    assert [e.cycle for e in trace.of_kind("odd")] == [15, 17, 19, 21, 23]
    # Counters keep counting past the ring.
    assert trace.counts["even"] == 13
    assert trace.counts["odd"] == 12


def test_max_events_validation():
    import pytest

    with pytest.raises(ValueError):
        Trace(max_events=0)


def test_clear_resets_ring_and_index():
    trace = Trace(max_events=3)
    for cycle in range(5):
        trace.record(cycle, "r0", "k")
    trace.clear()
    assert len(trace.events) == 0
    assert trace.dropped_events == 0
    assert trace.of_kind("k") == []
    trace.record(9, "r0", "k")
    assert [e.cycle for e in trace.of_kind("k")] == [9]
