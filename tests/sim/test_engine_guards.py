"""Regression: Engine.stop() and set_deadline() interplay.

The two run guards serve different masters — stop() is a cooperative
early return for components, set_deadline() a hard ceiling for worker
processes — and their interaction has sharp edges worth pinning:
stops are consumed by the run they interrupt, deadlines are checked
before stepping, and a stop can land exactly on the deadline cycle
without tripping it.
"""

import pytest

from repro.sim.component import Component
from repro.sim.engine import Engine, EngineDeadlineError


class _StopAt(Component):
    """Calls engine.stop() during its tick at a chosen cycle."""

    def __init__(self, engine, at):
        self.name = "stopper"
        self.engine = engine
        self.at = at

    def tick(self, cycle):
        if cycle == self.at:
            self.engine.stop()


def test_stop_request_before_run_is_ignored():
    """Each run consumes the stop flag on entry: a stale request from
    outside any run must not cancel the next one."""
    engine = Engine()
    engine.stop()
    engine.run(5)
    assert engine.cycle == 5


def test_stop_mid_run_finishes_the_current_cycle():
    engine = Engine()
    engine.add_component(_StopAt(engine, at=2))
    engine.run(100)
    assert engine.cycle == 3  # cycle 2 completed, nothing after


def test_stop_is_consumed_by_the_run_it_interrupts():
    engine = Engine()
    engine.add_component(_StopAt(engine, at=2))
    engine.run(100)
    engine.run(4)  # the stopper's cycle is past; this run is clean
    assert engine.cycle == 7


def test_stop_on_the_deadline_cycle_beats_the_deadline():
    """A component stopping at cycle d-1 ends the run before step()
    would check the deadline at cycle d — cooperative shutdown wins."""
    engine = Engine()
    engine.set_deadline(3)
    engine.add_component(_StopAt(engine, at=2))
    engine.run(100)  # would raise at cycle 3 without the stop
    assert engine.cycle == 3


def test_deadline_fires_without_a_stop():
    engine = Engine()
    engine.set_deadline(3)
    with pytest.raises(EngineDeadlineError):
        engine.run(100)
    assert engine.cycle == 3


def test_run_until_zero_budget_never_trips_a_due_deadline():
    """max_cycles=0 means 'check, never step': even with the deadline
    already due, the predicate is evaluated without raising."""
    engine = Engine()
    engine.run(3)
    engine.set_deadline(3)
    assert engine.run_until(lambda e: True, max_cycles=0)
    assert not engine.run_until(lambda e: False, max_cycles=0)
    assert engine.cycle == 3


def test_run_until_stop_returns_predicate_truth_at_that_point():
    engine = Engine()
    engine.add_component(_StopAt(engine, at=1))
    fired = engine.run_until(lambda e: e.cycle >= 10, max_cycles=100)
    assert not fired
    assert engine.cycle == 2


def test_deadline_survives_a_stopped_run():
    """stop() cancels the run, not the deadline: the ceiling still
    applies to the next run."""
    engine = Engine()
    engine.set_deadline(5)
    engine.add_component(_StopAt(engine, at=2))
    engine.run(100)
    assert engine.cycle == 3
    with pytest.raises(EngineDeadlineError):
        engine.run(100)
    assert engine.cycle == 5


def test_clearing_the_deadline_unblocks_stepping():
    engine = Engine()
    engine.set_deadline(2)
    with pytest.raises(EngineDeadlineError):
        engine.run(10)
    engine.clear_deadline()
    engine.run(3)
    assert engine.cycle == 5


class _Recorder(Component):
    def __init__(self, name, trail):
        self.name = name
        self.trail = trail

    def tick(self, cycle):
        self.trail.append(self.name)


def test_observers_tick_after_every_component():
    """Observer ordering is positional-registration-proof: a component
    added after the observer still ticks before it each cycle."""
    engine = Engine()
    trail = []
    engine.add_observer(_Recorder("oracle", trail))
    engine.add_component(_Recorder("late-traffic", trail))
    engine.run(2)
    assert trail == ["late-traffic", "oracle", "late-traffic", "oracle"]


@pytest.mark.parametrize("backend", ["reference", "events"])
def test_run_until_due_deadline_raises_instead_of_returning(backend):
    """Deadline precedence over the max_cycles budget, both backends:
    a worker's hard ceiling must surface as EngineDeadlineError, never
    as run_until's silent 'predicate stayed false' return."""
    from repro.sim.backends import make_engine

    engine = make_engine(backend)
    engine.set_deadline(3)
    with pytest.raises(EngineDeadlineError):
        engine.run_until(lambda e: False, max_cycles=100)
    assert engine.cycle == 3


@pytest.mark.parametrize("backend", ["reference", "events"])
def test_run_until_budget_exhausts_before_the_deadline(backend):
    """The silent False return is reserved for the budget: with the
    deadline still in the future, max_cycles wins quietly."""
    from repro.sim.backends import make_engine

    engine = make_engine(backend)
    engine.set_deadline(10)
    assert not engine.run_until(lambda e: False, max_cycles=4)
    assert engine.cycle == 4


def test_past_deadline_is_rejected_up_front():
    engine = Engine()
    engine.run(4)
    with pytest.raises(ValueError):
        engine.set_deadline(3)
    engine.set_deadline(4)  # equal to the current cycle is allowed...
    with pytest.raises(EngineDeadlineError):
        engine.step()       # ...and due immediately
