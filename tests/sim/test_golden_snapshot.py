"""Golden snapshot regression: the on-disk checkpoint format must
never silently drift.

The committed fixture is a mid-run engine snapshot of a fixed small
scenario.  Loading it exercises the header gate (magic + format
version) and the pickled state schema; restoring and running it
forward must land on exactly the behaviour a fresh uninterrupted run
of the same scenario produces.  Comparison is behavioural (cycle-
stamped message facts), never blob bytes — pickle encodings may churn
harmlessly, simulation trajectories may not.

Any incompatible change to snapshot contents (renamed attributes, new
engine state, schema reshapes) surfaces here as a loud failure.  If
the change is intentional, bump ``SNAPSHOT_FORMAT_VERSION`` per the
policy in ``docs/checkpointing.md`` and regenerate::

    PYTHONPATH=src python tests/sim/test_golden_snapshot.py --regen

then review the fixture diff like any other code change.
"""

import os

import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "fixtures", "golden_snapshot.bin"
)

SEED = 77
SPLIT = 12
MESSAGES = (
    (0, 3, (1, 2, 3)),
    (3, 0, (9, 9)),
    (2, 1, (4, 0, 4, 0)),
)


def _build():
    from repro.endpoint.messages import Message
    from repro.verify.scenario import Scenario

    scenario = Scenario(
        radix=2,
        n_stages=2,
        seed=SEED,
        messages=[
            {"src": s, "dest": d, "payload": list(p)} for s, d, p in MESSAGES
        ],
    )
    network = scenario.build()
    sent = [
        network.send(m["src"], Message(dest=m["dest"], payload=m["payload"]))
        for m in scenario.messages
    ]
    return network, sent


def _distill(network, sent):
    """Cycle-stamped behavioural facts, settled by quiescence."""
    network.run_until_quiet()
    return {
        "outcomes": [m.outcome for m in sent],
        "attempts": [m.attempts for m in sent],
        "done_cycles": [m.done_cycle for m in sent],
        "arrivals": [entry[0] for entry in network.log.receiver_arrivals],
        "checksum_failures": network.log.receiver_checksum_failures,
    }


def _capture():
    from repro.sim.snapshot import snapshot_network

    network, sent = _build()
    network.run(SPLIT)
    return snapshot_network(
        network,
        extras={"sent": sent},
        meta={"kind": "golden", "seed": SEED, "split": SPLIT},
    )


def _load_golden():
    from repro.sim.snapshot import Snapshot, SnapshotFormatError

    try:
        return Snapshot.load(GOLDEN_PATH)
    except SnapshotFormatError as error:
        pytest.fail(
            "golden snapshot no longer loads ({}). If the format change "
            "is intentional, bump SNAPSHOT_FORMAT_VERSION and regenerate: "
            "PYTHONPATH=src python tests/sim/test_golden_snapshot.py "
            "--regen".format(error)
        )


def test_golden_snapshot_loads_under_the_current_format():
    from repro.sim.snapshot import SNAPSHOT_FORMAT_VERSION

    snap = _load_golden()
    assert snap.version == SNAPSHOT_FORMAT_VERSION
    assert snap.backend == "reference"
    assert snap.cycle == SPLIT
    assert snap.meta == {"kind": "golden", "seed": SEED, "split": SPLIT}


def test_golden_snapshot_resumes_the_fixed_scenario_exactly():
    from repro.sim.snapshot import restore_network

    fresh_network, fresh_sent = _build()
    expected = _distill(fresh_network, fresh_sent)
    assert expected["outcomes"], "fixed scenario sent nothing"

    restored = restore_network(_load_golden())
    assert restored.network.engine.cycle == SPLIT
    resumed = _distill(restored.network, restored.extras["sent"])
    assert resumed == expected


def test_stamped_future_version_fails_before_unpickling(tmp_path):
    from repro.sim.snapshot import (
        MAGIC,
        SNAPSHOT_FORMAT_VERSION,
        Snapshot,
        SnapshotFormatError,
    )

    data = bytearray(open(GOLDEN_PATH, "rb").read())
    data[len(MAGIC): len(MAGIC) + 4] = (
        SNAPSHOT_FORMAT_VERSION + 7
    ).to_bytes(4, "big")
    drifted = tmp_path / "drifted.snap"
    drifted.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        Snapshot.load(drifted)
    message = str(excinfo.value)
    assert "v{}".format(SNAPSHOT_FORMAT_VERSION + 7) in message
    assert "expected v{}".format(SNAPSHOT_FORMAT_VERSION) in message


def test_capture_is_reproducible_in_process():
    # The fixture's source of truth is deterministic: two fresh
    # captures carry identical state (same content hash).
    assert _capture().content_hash == _capture().content_hash


def _regen():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    snap = _capture()
    snap.save(GOLDEN_PATH)
    print(
        "wrote {} (format v{}, cycle {}, sha256 {})".format(
            GOLDEN_PATH, snap.version, snap.cycle, snap.content_hash[:12]
        )
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
