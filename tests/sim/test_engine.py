"""Engine ordering, two-phase update guarantees, and run guards."""

import pytest

from repro.core import words as W
from repro.sim.channel import Channel
from repro.sim.component import Component
from repro.sim.engine import Engine, EngineDeadlineError


class _Forwarder(Component):
    """Copies its input end to its output end every cycle."""

    def __init__(self, name, inp, out):
        self.name = name
        self.inp = inp
        self.out = out

    def tick(self, cycle):
        word = self.inp.recv()
        if word is not None:
            self.out.send(word)


class _Counter(Component):
    def __init__(self):
        self.name = "counter"
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def test_cycle_numbers_are_sequential():
    engine = Engine()
    counter = engine.add_component(_Counter())
    engine.run(5)
    assert counter.ticks == [0, 1, 2, 3, 4]
    assert engine.cycle == 5


def _pipeline_engine(order_reversed):
    """Two forwarders in a row; result must not depend on tick order."""
    engine = Engine()
    c1 = engine.add_channel(Channel(delay=1, name="c1"))
    c2 = engine.add_channel(Channel(delay=1, name="c2"))
    c3 = engine.add_channel(Channel(delay=1, name="c3"))
    f1 = _Forwarder("f1", c1.b, c2.a)
    f2 = _Forwarder("f2", c2.b, c3.a)
    if order_reversed:
        engine.add_component(f2)
        engine.add_component(f1)
    else:
        engine.add_component(f1)
        engine.add_component(f2)
    return engine, c1, c3


def _latency_through(engine, c_in, c_out):
    c_in.a.send(W.data(7))
    for cycle in range(1, 20):
        engine.step()
        if c_out.b.recv() == W.data(7):
            return cycle
    raise AssertionError("word never arrived")


def test_two_phase_update_is_order_independent():
    latencies = []
    for order_reversed in (False, True):
        engine, c_in, c_out = _pipeline_engine(order_reversed)
        latencies.append(_latency_through(engine, c_in, c_out))
    assert latencies[0] == latencies[1] == 3  # three delay-1 channels


def test_run_until_stops_early():
    engine = Engine()
    counter = engine.add_component(_Counter())
    fired = engine.run_until(lambda e: e.cycle >= 3, max_cycles=100)
    assert fired
    assert engine.cycle == 3
    assert len(counter.ticks) == 3


def test_run_until_budget_exhaustion():
    engine = Engine()
    fired = engine.run_until(lambda e: False, max_cycles=10)
    assert not fired
    assert engine.cycle == 10


def test_run_until_zero_budget_checks_without_stepping():
    engine = Engine()
    counter = engine.add_component(_Counter())
    # Predicate already true: reported, zero cycles consumed.
    assert engine.run_until(lambda e: True, max_cycles=0)
    # Predicate false: reported false, still zero cycles consumed.
    assert not engine.run_until(lambda e: False, max_cycles=0)
    assert engine.cycle == 0
    assert counter.ticks == []


def test_run_until_rejects_negative_budget():
    with pytest.raises(ValueError):
        Engine().run_until(lambda e: True, max_cycles=-1)


def test_run_zero_cycles_is_a_no_op():
    engine = Engine()
    counter = engine.add_component(_Counter())
    engine.run(0)
    assert engine.cycle == 0
    assert counter.ticks == []


def test_stop_ends_run_early():
    engine = Engine()

    class _Stopper(Component):
        name = "stopper"

        def tick(self, cycle):
            if cycle == 3:
                engine.stop()

    engine.add_component(_Stopper())
    engine.run(100)
    assert engine.cycle == 4  # the stopping cycle completes, then we halt


def test_stop_request_does_not_leak_into_next_run():
    engine = Engine()

    class _StopOnce(Component):
        name = "stop-once"

        def tick(self, cycle):
            if cycle == 1:
                engine.stop()

    engine.add_component(_StopOnce())
    engine.run(10)
    assert engine.cycle == 2
    engine.run(10)  # a fresh run is unaffected by the consumed stop
    assert engine.cycle == 12


def test_stop_ends_run_until_early():
    engine = Engine()

    class _Stopper(Component):
        name = "stopper"

        def tick(self, cycle):
            if cycle == 2:
                engine.stop()

    engine.add_component(_Stopper())
    fired = engine.run_until(lambda e: False, max_cycles=1000)
    assert not fired
    assert engine.cycle == 3


def test_deadline_raises_with_clear_error():
    engine = Engine()
    engine.add_component(_Counter())
    engine.set_deadline(5)
    with pytest.raises(EngineDeadlineError, match="deadline of 5"):
        engine.run(100)
    assert engine.cycle == 5  # stepped up to, never past, the deadline


def test_deadline_guards_run_until_livelock():
    engine = Engine()
    engine.set_deadline(7)
    with pytest.raises(EngineDeadlineError):
        engine.run_until(lambda e: False, max_cycles=10**9)
    assert engine.cycle == 7


def test_deadline_clear_and_validation():
    engine = Engine()
    engine.run(4)
    with pytest.raises(ValueError):
        engine.set_deadline(3)  # already in the past
    engine.set_deadline(6)
    engine.clear_deadline()
    engine.run(10)  # no deadline left to trip
    assert engine.cycle == 14


def test_network_quiet_check_with_zero_budget_does_not_advance():
    from repro.network.builder import build_network
    from repro.network.topology import figure1_plan

    network = build_network(figure1_plan(), seed=1)
    before = network.engine.cycle
    assert network.run_until_quiet(max_cycles=0)  # idle network is quiet
    assert network.engine.cycle == before  # pure check: no settle cycles


def test_experiment_deadline_cycles_guard():
    from repro.endpoint.traffic import UniformRandomTraffic
    from repro.harness.experiment import run_experiment
    from repro.network.builder import build_network
    from repro.network.topology import figure1_plan

    network = build_network(figure1_plan(), seed=1, fast_reclaim=True)
    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.05,
        message_words=6,
        seed=2,
    )
    with pytest.raises(EngineDeadlineError):
        run_experiment(
            network,
            traffic,
            warmup_cycles=200,
            measure_cycles=600,
            deadline_cycles=50,  # far too tight: the guard must fire
        )


def test_pre_cycle_hooks_run_before_ticks():
    engine = Engine()
    seen = []

    class _Probe(Component):
        name = "probe"

        def tick(self, cycle):
            seen.append(("tick", cycle))

    engine.add_component(_Probe())
    engine.add_pre_cycle_hook(lambda e: seen.append(("hook", e.cycle)))
    engine.run(2)
    assert seen == [("hook", 0), ("tick", 0), ("hook", 1), ("tick", 1)]
