"""Engine ordering and two-phase update guarantees."""

from repro.core import words as W
from repro.sim.channel import Channel
from repro.sim.component import Component
from repro.sim.engine import Engine


class _Forwarder(Component):
    """Copies its input end to its output end every cycle."""

    def __init__(self, name, inp, out):
        self.name = name
        self.inp = inp
        self.out = out

    def tick(self, cycle):
        word = self.inp.recv()
        if word is not None:
            self.out.send(word)


class _Counter(Component):
    def __init__(self):
        self.name = "counter"
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def test_cycle_numbers_are_sequential():
    engine = Engine()
    counter = engine.add_component(_Counter())
    engine.run(5)
    assert counter.ticks == [0, 1, 2, 3, 4]
    assert engine.cycle == 5


def _pipeline_engine(order_reversed):
    """Two forwarders in a row; result must not depend on tick order."""
    engine = Engine()
    c1 = engine.add_channel(Channel(delay=1, name="c1"))
    c2 = engine.add_channel(Channel(delay=1, name="c2"))
    c3 = engine.add_channel(Channel(delay=1, name="c3"))
    f1 = _Forwarder("f1", c1.b, c2.a)
    f2 = _Forwarder("f2", c2.b, c3.a)
    if order_reversed:
        engine.add_component(f2)
        engine.add_component(f1)
    else:
        engine.add_component(f1)
        engine.add_component(f2)
    return engine, c1, c3


def _latency_through(engine, c_in, c_out):
    c_in.a.send(W.data(7))
    for cycle in range(1, 20):
        engine.step()
        if c_out.b.recv() == W.data(7):
            return cycle
    raise AssertionError("word never arrived")


def test_two_phase_update_is_order_independent():
    latencies = []
    for order_reversed in (False, True):
        engine, c_in, c_out = _pipeline_engine(order_reversed)
        latencies.append(_latency_through(engine, c_in, c_out))
    assert latencies[0] == latencies[1] == 3  # three delay-1 channels


def test_run_until_stops_early():
    engine = Engine()
    counter = engine.add_component(_Counter())
    fired = engine.run_until(lambda e: e.cycle >= 3, max_cycles=100)
    assert fired
    assert engine.cycle == 3
    assert len(counter.ticks) == 3


def test_run_until_budget_exhaustion():
    engine = Engine()
    fired = engine.run_until(lambda e: False, max_cycles=10)
    assert not fired
    assert engine.cycle == 10


def test_pre_cycle_hooks_run_before_ticks():
    engine = Engine()
    seen = []

    class _Probe(Component):
        name = "probe"

        def tick(self, cycle):
            seen.append(("tick", cycle))

    engine.add_component(_Probe())
    engine.add_pre_cycle_hook(lambda e: seen.append(("hook", e.cycle)))
    engine.run(2)
    assert seen == [("hook", 0), ("tick", 0), ("hook", 1), ("tick", 1)]
