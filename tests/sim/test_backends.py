"""The event-driven engine backend: gating, waking, compression.

Byte-level equivalence over whole workloads lives in
``tests/verify/test_backend_diff.py``; these tests pin the mechanisms
that make it hold — parking and re-scheduling, the hot channel set,
the degrade-to-dense fallback, idle-run compression and its
interaction with deadlines and stop requests.
"""

import pytest

from repro.core import words as W
from repro.endpoint.messages import DELIVERED, Message
from repro.endpoint.traffic import TraceTraffic, UniformRandomTraffic
from repro.harness.load_sweep import figure1_network
from repro.sim.backends import BACKENDS, EventEngine, make_engine
from repro.sim.channel import Channel
from repro.sim.component import ACTIVE, Component
from repro.sim.engine import Engine, EngineDeadlineError


def test_make_engine_selects_backend():
    from repro.sim.vector import VectorEngine

    assert type(make_engine()) is Engine
    assert type(make_engine("reference")) is Engine
    assert type(make_engine("events")) is EventEngine
    assert type(make_engine("vector")) is VectorEngine
    assert set(BACKENDS) == {"reference", "events", "vector"}


def test_make_engine_rejects_unknown_backend():
    with pytest.raises(ValueError) as excinfo:
        make_engine("warp")
    assert "warp" in str(excinfo.value)
    assert "events" in str(excinfo.value)
    assert "reference" in str(excinfo.value)


class _Counter(Component):
    """Ticks forever; knows nothing of the activity protocol."""

    def __init__(self):
        self.name = "counter"
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


def test_non_protocol_component_degrades_to_dense_sweep():
    engine = EventEngine()
    counter = _Counter()
    engine.add_component(counter)
    engine.run(5)
    assert engine.degraded
    assert counter.ticks == [0, 1, 2, 3, 4]
    assert engine.compressed_cycles == 0


def test_degraded_equivalence_on_a_network():
    """A foreign component must not change network results, only speed:
    the whole engine falls back to the reference sweep."""
    logs = []
    for extra in (False, True):
        network = figure1_network(seed=3, backend="events")
        if extra:
            network.engine.add_component(_Counter())
        message = network.send(4, Message(dest=11, payload=[1, 2, 3]))
        assert network.run_until_quiet(max_cycles=20000)
        logs.append((message.outcome, message.latency, message.attempts))
    assert network.engine.degraded
    assert logs[0] == logs[1]


def test_idle_network_parks_and_compresses():
    network = figure1_network(seed=0, backend="events")
    network.run(2000)
    engine = network.engine
    assert engine.cycle == 2000
    assert not engine.degraded
    # Everything parks after the conservative warm-up cycles and the
    # remaining idle run is compressed away in O(1).
    assert engine.compressed_cycles > 1900


def test_send_on_a_parked_network_is_delivered():
    """network.send wakes the endpoint out of PARKED; the delivery
    must match the reference backend cycle for cycle."""
    latencies = []
    for backend in ("reference", "events"):
        network = figure1_network(seed=5, backend=backend)
        network.run(500)  # park everything (events) / spin (reference)
        message = network.send(2, Message(dest=13, payload=[7, 8, 9]))
        assert network.run_until_quiet(max_cycles=20000)
        assert message.outcome == DELIVERED
        latencies.append((message.start_cycle, message.done_cycle))
    assert latencies[0] == latencies[1]


def test_loaded_equivalence_uniform_traffic():
    """Same seeds, both backends, moderate load: identical logs."""
    fingerprints = []
    for backend in ("reference", "events"):
        network = figure1_network(seed=9, backend=backend)
        UniformRandomTraffic(
            network.plan.n_endpoints,
            network.codec.w,
            rate=0.05,
            message_words=8,
            seed=10,
        ).attach(network)
        network.run(1500)
        fingerprints.append(
            [
                (m.source, m.dest, m.queued_cycle, m.start_cycle,
                 m.done_cycle, m.attempts, m.outcome)
                for m in network.log.messages
            ]
        )
    assert fingerprints[0] == fingerprints[1]
    assert fingerprints[0]  # the comparison is not vacuous


def test_trace_traffic_compresses_between_arrivals():
    """Trace sources name their next arrival, so the gaps between
    events are compressed — without changing a single delivery."""
    events = [(100, 1, 9), (1800, 6, 2), (3500, 12, 4)]
    logs = []
    compressed = None
    for backend in ("reference", "events"):
        network = figure1_network(seed=21, backend=backend)
        TraceTraffic(
            network.plan.n_endpoints,
            network.codec.w,
            events=events,
            message_words=6,
        ).attach(network)
        network.run(5000)
        logs.append(
            [
                (m.source, m.dest, m.start_cycle, m.done_cycle, m.outcome)
                for m in network.log.messages
            ]
        )
        if backend == "events":
            compressed = network.engine.compressed_cycles
    assert logs[0] == logs[1]
    assert len(logs[0]) == len(events)
    assert all(outcome == DELIVERED for _, _, _, _, outcome in logs[0])
    assert compressed > 3000  # the dead air between arrivals


def test_compression_respects_the_deadline():
    """An idle-run jump may land on the deadline but never past it."""
    network = figure1_network(seed=0, backend="events")
    network.engine.set_deadline(700)
    with pytest.raises(EngineDeadlineError):
        network.run(100000)
    assert network.engine.cycle == 700


class _StopObserver(Component):
    """Observer that requests a stop at a chosen cycle (observers are
    outside the activity protocol and tick every cycle)."""

    def __init__(self, engine, at):
        self.name = "stop-observer"
        self.engine = engine
        self.at = at

    def tick(self, cycle):
        if cycle == self.at:
            self.engine.stop()


def test_stop_mid_run_on_the_events_backend():
    network = figure1_network(seed=0, backend="events")
    engine = network.engine
    engine.add_observer(_StopObserver(engine, at=7))
    network.run(1000)
    assert engine.cycle == 8  # cycle 7 completed, nothing after
    assert not engine.degraded


def test_observers_disable_compression():
    """Observers sample every cycle, so no cycle may be skipped."""
    network = figure1_network(seed=0, backend="events")
    trail = []

    class _Probe(Component):
        name = "probe"

        def tick(self, cycle):
            trail.append(cycle)

    network.engine.add_observer(_Probe())
    network.run(50)
    assert trail == list(range(50))
    assert network.engine.compressed_cycles == 0


def test_wake_ignores_unknown_objects():
    network = figure1_network(seed=0, backend="events")
    network.run(10)
    foreign = Channel(name="foreign")
    network.engine.wake(foreign)   # never registered: ignored
    network.engine.wake(object())  # not a component either: ignored
    network.run(10)
    assert network.engine.cycle == 20


class _Wired(Component):
    """Protocol-compliant component wired to one channel's a side."""

    def __init__(self, channel):
        self.name = "wired"
        self.channel = channel
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1

    def activity_state(self):
        return ACTIVE

    def attached_channels(self):
        return [(self.channel, True)]

    def on_park(self):
        pass


def test_unregistered_attached_channel_is_never_advanced():
    """A component may report wiring to a channel the engine never
    registered (ad-hoc harnesses); the reference engine would not
    advance it, so the events backend must not either."""
    private = Channel(name="private")
    engine = EventEngine()
    engine.add_component(_Wired(private))
    private.a.send(W.data(1))
    engine.run(8)
    assert not engine.degraded
    # The staged word went nowhere: the channel never advanced.
    assert private.b.recv() is None


def test_staging_heats_a_cold_channel():
    """The staging hook re-heats channels without any engine scan."""
    network = figure1_network(seed=0, backend="events")
    network.run(600)  # everything parked, hot set drained
    engine = network.engine
    assert not engine._hot
    channel = network.engine.channels[0]
    assert channel.hot_hook is not None
    channel.hot_hook(channel)
    assert channel in engine._hot
