"""Engine snapshot/restore: capture API, guard round-trips, the
format-version gate, and in-place backend transmutes."""

import pickle

import pytest

from repro.endpoint.messages import Message
from repro.sim import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotFormatError,
    restore_engine,
    restore_network,
    snapshot_network,
)
from repro.sim.backends import BACKENDS, EventEngine
from repro.sim.engine import Engine, EngineDeadlineError
from repro.sim.snapshot import MAGIC
from repro.verify.scenario import Scenario


def _network(backend="reference", messages=((0, 1, (3, 1, 2)),)):
    scenario = Scenario(
        radix=2,
        n_stages=2,
        seed=5,
        messages=[
            {"src": s, "dest": d, "payload": list(p)} for s, d, p in messages
        ],
    )
    network = scenario.build(backend=backend)
    for m in scenario.messages:
        network.send(m["src"], Message(dest=m["dest"], payload=m["payload"]))
    return network


def _roundtrip(snap):
    return pickle.loads(pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL))


class _Brake:
    """A picklable pre-cycle hook that stops the engine at a cycle."""

    def __init__(self, at):
        self.at = at

    def __call__(self, engine):
        if engine.cycle >= self.at:
            engine.stop()


class TestSnapshotBasics:
    def test_snapshot_records_backend_cycle_and_version(self):
        network = _network()
        network.run(4)
        snap = network.engine.snapshot(meta={"note": "t"})
        assert snap.version == SNAPSHOT_FORMAT_VERSION
        assert snap.backend == "reference"
        assert snap.cycle == 4
        assert snap.meta == {"note": "t"}
        assert "Snapshot v{}".format(snap.version) in repr(snap)

    def test_restored_network_continues_like_the_original(self):
        network = _network()
        network.run(3)
        snap = _roundtrip(snapshot_network(network))
        restored = restore_network(snap).network
        assert restored.engine.cycle == 3
        network.run_until_quiet()
        restored.run_until_quiet()
        assert [m.outcome for m in network.log.messages] == [
            m.outcome for m in restored.log.messages
        ]
        assert [m.done_cycle for m in network.log.messages] == [
            m.done_cycle for m in restored.log.messages
        ]

    def test_capture_does_not_perturb_the_live_engine(self):
        solo = _network()
        solo.run_until_quiet()
        observed = _network()
        observed.run(2)
        snapshot_network(observed)
        observed.run_until_quiet()
        assert [m.done_cycle for m in solo.log.messages] == [
            m.done_cycle for m in observed.log.messages
        ]

    def test_restore_network_rejects_engine_level_snapshot(self):
        network = _network()
        snap = network.engine.snapshot()
        with pytest.raises(ValueError) as excinfo:
            restore_network(snap)
        assert "restore_engine" in str(excinfo.value)


class TestGuardRoundTrip:
    """Engine.stop() / set_deadline() state rides the snapshot."""

    def test_deadline_round_trips_and_still_fires(self):
        network = _network()
        network.engine.set_deadline(6)
        network.run(2)
        snap = _roundtrip(snapshot_network(network))
        engine = restore_network(snap).engine
        assert engine.deadline == 6
        engine.run(4)  # cycles 2..5 step fine, landing on cycle 6
        assert engine.cycle == 6
        with pytest.raises(EngineDeadlineError):
            engine.step()  # at the deadline: refuses, loudly
        # The original is equally bounded — shared-fate, not aliasing.
        with pytest.raises(EngineDeadlineError):
            network.run(10)

    def test_cleared_deadline_round_trips_as_cleared(self):
        network = _network()
        network.engine.set_deadline(50)
        network.engine.clear_deadline()
        engine = restore_network(
            _roundtrip(snapshot_network(network))
        ).engine
        assert engine.deadline is None
        engine.run(60)  # well past the cleared deadline

    def test_stop_request_round_trips(self):
        network = _network()
        network.engine.stop()
        assert network.engine._stop_requested
        engine = restore_network(
            _roundtrip(snapshot_network(network))
        ).engine
        assert engine._stop_requested
        # Semantics preserved too: run() consumes the request on entry,
        # exactly as on a live engine.
        engine.run(2)
        assert engine.cycle == 2
        assert not engine._stop_requested

    def test_mid_run_stop_state_round_trips(self):
        # A stop raised *during* a run breaks the loop; a snapshot
        # taken right after must carry the consumed-request state so a
        # resumed run() behaves identically.
        network = _network()
        network.engine.add_pre_cycle_hook(_Brake(network.engine.cycle + 2))
        network.run(10)
        stopped_at = network.engine.cycle
        engine = restore_network(
            _roundtrip(snapshot_network(network))
        ).engine
        assert engine.cycle == stopped_at
        assert engine._stop_requested == network.engine._stop_requested


class TestFormatGate:
    def test_save_load_round_trip(self, tmp_path):
        network = _network()
        network.run(2)
        snap = snapshot_network(network, meta={"trial": 9})
        path = tmp_path / "state.snap"
        snap.save(path)
        loaded = Snapshot.load(path)
        assert loaded.version == snap.version
        assert loaded.backend == snap.backend
        assert loaded.cycle == snap.cycle
        assert loaded.meta == {"trial": 9}
        assert loaded.blob == snap.blob
        assert loaded.content_hash == snap.content_hash

    def test_bad_magic_fails_loudly(self, tmp_path):
        path = tmp_path / "not.snap"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(SnapshotFormatError) as excinfo:
            Snapshot.load(path)
        assert "bad magic" in str(excinfo.value)

    def test_truncated_header_fails_loudly(self, tmp_path):
        path = tmp_path / "trunc.snap"
        path.write_bytes(MAGIC + b"\x00")
        with pytest.raises(SnapshotFormatError):
            Snapshot.load(path)

    def test_version_drift_fails_before_unpickling(self, tmp_path):
        network = _network()
        snap = snapshot_network(network)
        path = tmp_path / "old.snap"
        snap.save(path)
        data = bytearray(path.read_bytes())
        # Stamp a future format version; the payload after the header
        # is poisoned so any unpickling attempt would explode — the
        # gate must reject on the version alone.
        data[len(MAGIC): len(MAGIC) + 4] = (
            SNAPSHOT_FORMAT_VERSION + 1
        ).to_bytes(4, "big")
        data[len(MAGIC) + 4:] = b"\x80\x05garbage"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError) as excinfo:
            Snapshot.load(path)
        message = str(excinfo.value)
        assert "v{}".format(SNAPSHOT_FORMAT_VERSION + 1) in message
        assert "expected v{}".format(SNAPSHOT_FORMAT_VERSION) in message

    def test_cache_token_is_content_addressed(self):
        network = _network()
        snap = snapshot_network(network)
        token = snap.cache_token()
        assert token.startswith("snapshot:sha256:")
        assert _roundtrip(snap).cache_token() == token
        network.run(2)
        assert snapshot_network(network).cache_token() != token


class TestBackendTransmute:
    @pytest.mark.parametrize("capture", sorted(BACKENDS))
    @pytest.mark.parametrize("target", sorted(BACKENDS))
    def test_transmute_preserves_identity_and_trajectory(
        self, capture, target
    ):
        reference = _network(backend=capture)
        reference.run_until_quiet()

        network = _network(backend=capture)
        network.run(3)
        snap = _roundtrip(snapshot_network(network))
        assert snap.backend == capture
        restored = restore_network(snap, backend=target).network
        # The transmute is in place: everything in the restored graph
        # still points at the one engine object.
        assert type(restored.engine) is BACKENDS[target]
        restored.run_until_quiet()
        assert [m.done_cycle for m in reference.log.messages] == [
            m.done_cycle for m in restored.log.messages
        ]

    def test_unknown_backend_is_rejected(self):
        network = _network()
        snap = snapshot_network(network)
        with pytest.raises(ValueError) as excinfo:
            restore_network(snap, backend="quantum")
        assert "quantum" in str(excinfo.value)

    def test_restore_engine_returns_the_engine(self):
        network = _network()
        network.run(2)
        snap = _roundtrip(network.engine.snapshot())
        engine = restore_engine(snap, backend="events")
        assert isinstance(engine, EventEngine)
        assert engine.cycle == 2
        engine.run(5)
        assert engine.cycle >= 2

    def test_default_restore_keeps_capture_backend(self):
        network = _network(backend="events")
        snap = _roundtrip(snapshot_network(network))
        assert snap.backend == "events"
        restored = restore_network(snap).network
        assert type(restored.engine) is BACKENDS["events"]
        assert isinstance(restored.engine, Engine)
