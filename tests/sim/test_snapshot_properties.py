"""Property test: snapshot -> pickle -> unpickle -> restore is the
identity, for random scenarios on both backends — plus the awkward
states (mid-repair-cascade fault management, scan-masked ports)."""

import pickle

import pytest

from repro.sim.snapshot import restore_network, snapshot_network
from repro.verify.backend_diff import message_fingerprint
from repro.verify.resume_diff import _finish_scenario, _start_scenario

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _roundtrip(snap):
    return pickle.loads(pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL))


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    backend=st.sampled_from(["reference", "events"]),
    restore_backend=st.sampled_from(["reference", "events"]),
    split=st.integers(min_value=0, max_value=40),
)
def test_snapshot_pickle_restore_is_identity(
    seed, backend, restore_backend, split
):
    from repro.verify.scenario import random_scenario

    scenario = random_scenario(seed=seed, n_messages=2)

    reference = _finish_scenario(*_start_scenario(scenario, backend))

    network, oracle, sent = _start_scenario(scenario, backend)
    network.run(split)
    at_capture = message_fingerprint(network.log)
    snap = _roundtrip(
        snapshot_network(network, extras={"oracle": oracle, "sent": sent})
    )
    restored = restore_network(snap, backend=restore_backend)

    # Identity at the capture point: same cycle, same observable log.
    assert restored.network.engine.cycle == split
    assert message_fingerprint(restored.network.log) == at_capture

    # Identity under continuation: the restored half-run ends exactly
    # where the uninterrupted run does — and so does the original,
    # which the capture must not have perturbed.
    resumed = _finish_scenario(
        restored.network, restored.extras["oracle"], restored.extras["sent"]
    )
    assert resumed == reference
    original = _finish_scenario(network, oracle, sent)
    assert original == reference


def _soak_pieces(backend):
    """A small self-healing soak: dead router + flaky link + traffic."""
    import random as _random

    from repro.core.random_source import derive_seed
    from repro.endpoint.traffic import UniformRandomTraffic
    from repro.faults.injector import (
        FaultInjector,
        random_transient_scenario,
    )
    from repro.faults.manager import FaultManager
    from repro.faults.model import DeadRouter
    from repro.harness.load_sweep import figure1_network

    seed = 23
    network = figure1_network(
        seed=seed,
        endpoint_kwargs={"verify_stage_checksums": True, "max_attempts": 60},
        backend=backend,
    )
    injector = FaultInjector(network)
    rng = _random.Random(derive_seed(seed, "soak"))
    middle = [k for k in network.router_grid if 0 < k[0] < 2]
    rng.shuffle(middle)
    stage, block, index = middle[0]
    injector.at(200, DeadRouter(stage, block, index))
    for fault in random_transient_scenario(
        network, n_flaky_links=1, mtbf=500, mttr=200, seed=seed, start=200
    ):
        injector.transient(fault)
    manager = FaultManager(network, rate_window=200)
    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.05,
        message_words=12,
        seed=seed + 1,
    ).attach(network)
    return network, manager


def _manager_fingerprint(manager):
    return {
        "suspicion": dict(manager.suspicion),
        "due": list(manager.due),
        "masked": sorted(manager.masked),
        "mask_events": list(manager.mask_events),
        "repairs": list(manager.repairs),
        "evidence_count": manager.evidence_count,
        "cooldowns": dict(manager._cooldown_until),
    }


@pytest.mark.parametrize("backend", ["reference", "events"])
def test_mid_cascade_fault_management_round_trips(backend):
    """Snapshot between evidence accumulation and repair service — the
    manager's suspicion/due/cooldown state mid-cascade must resume to
    the same masks and repair records."""
    reference_net, reference_mgr = _soak_pieces(backend)
    network, manager = _soak_pieces(backend)

    for net, mgr in ((reference_net, reference_mgr), (network, manager)):
        # Run until a repair is pending but NOT yet serviced.  With
        # auto_stop the engine halts on the cycle the repair becomes
        # due, so both copies stop at the identical point.
        for _ in range(40):
            net.run(100)
            if mgr.repairs_due():
                break
        assert mgr.repairs_due(), "soak never accumulated repair evidence"

    snap = _roundtrip(snapshot_network(network, extras={"manager": manager}))
    restored = restore_network(snap)
    rmgr = restored.extras["manager"]
    assert _manager_fingerprint(rmgr) == _manager_fingerprint(manager)
    assert rmgr.suspicion, "expected live suspicion mid-cascade"

    # Service the cascade and run on, on all three copies.
    outcomes = []
    for net, mgr in (
        (reference_net, reference_mgr),
        (network, manager),
        (restored.network, rmgr),
    ):
        mgr.service()
        net.run(600)
        fp = _manager_fingerprint(mgr)
        fp["log"] = message_fingerprint(net.log)
        fp["cycle"] = net.engine.cycle
        outcomes.append(fp)
    assert outcomes[0] == outcomes[1], "capture perturbed the soak"
    assert outcomes[0] == outcomes[2], "resumed cascade diverged"
    assert outcomes[0]["repairs"], "cascade never produced a repair record"


def test_masked_port_scan_state_round_trips():
    """router.multitap (lambda-captured scan registers) is rebuilt on
    restore with its dead-port set intact; masked router config rides
    the snapshot verbatim."""
    from repro.scan.controller import attach_scan
    from repro.verify.scenario import Scenario

    network = Scenario(radix=2, n_stages=2, seed=9).build()
    router = next(iter(network.all_routers()))
    multitap = attach_scan(router, sp=2)
    multitap.kill_port(1)
    router.config.port_enabled[0] = False  # a masked (repaired) port

    snap = _roundtrip(snapshot_network(network))
    restored = restore_network(snap).network
    rrouter = next(
        r for r in restored.all_routers() if r.name == router.name
    )
    assert rrouter.multitap is not None
    assert rrouter.multitap.sp == multitap.sp
    assert rrouter.multitap.dead_ports == {1}
    assert rrouter.config.port_enabled[0] is False
    # The rebuilt TAP is live: a surviving port still answers scans.
    rrouter.multitap.step(0, tms=0)
