"""Property-based tests (hypothesis) on the core data structures."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import words as W
from repro.core.cascade import join_slices, split_value
from repro.core.crossbar import CrossbarAllocator
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import RandomStream
from repro.network.headers import HeaderCodec
from repro.sim.channel import Channel

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

widths = st.sampled_from([4, 8, 16])


@st.composite
def codec_specs(draw):
    """A consistent (w, hw, radices) triple plus a destination."""
    w = draw(widths)
    hw = draw(st.sampled_from([0, 1, 2]))
    n_stages = draw(st.integers(min_value=1, max_value=6))
    radices = [
        draw(st.sampled_from([r for r in (1, 2, 4, 8) if r <= (1 << w)]))
        for _ in range(n_stages)
    ]
    total = math.prod(radices)
    dest = draw(st.integers(min_value=0, max_value=total - 1))
    return w, hw, radices, dest


# ---------------------------------------------------------------------------
# Header codec
# ---------------------------------------------------------------------------

@given(codec_specs())
@settings(max_examples=150)
def test_header_directions_equal_digits(spec):
    w, hw, radices, dest = spec
    codec = HeaderCodec(w=w, hw=hw, stage_radices=radices)
    directions = [step[0] for step in codec.simulate(dest)]
    assert directions == codec.digits(dest)


@given(codec_specs())
@settings(max_examples=150)
def test_header_fully_consumed(spec):
    w, hw, radices, dest = spec
    codec = HeaderCodec(w=w, hw=hw, stage_radices=radices)
    assert codec.simulate(dest)[-1][1] == []


@given(codec_specs())
@settings(max_examples=150)
def test_hbits_matches_encoded_length(spec):
    w, hw, radices, dest = spec
    codec = HeaderCodec(w=w, hw=hw, stage_radices=radices)
    assert len(codec.encode(dest)) * w == codec.hbits()


@given(codec_specs())
@settings(max_examples=100)
def test_distinct_destinations_have_distinct_digit_strings(spec):
    w, hw, radices, dest = spec
    codec = HeaderCodec(w=w, hw=hw, stage_radices=radices)
    other = (dest + 1) % codec.destinations
    if other != dest:
        assert codec.digits(dest) != codec.digits(other)


@given(codec_specs())
@settings(max_examples=100)
def test_header_word_values_fit_width(spec):
    w, hw, radices, dest = spec
    codec = HeaderCodec(w=w, hw=hw, stage_radices=radices)
    assert all(0 <= value < (1 << w) for value in codec.encode(dest))


# ---------------------------------------------------------------------------
# Checksum
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=60))
def test_checksum_incremental_equals_batch(values):
    crc = W.Checksum()
    for value in values:
        crc.update(value)
    assert crc.value == W.checksum_of(values)


@given(
    st.lists(st.integers(min_value=0, max_value=0xFF), min_size=1, max_size=40),
    st.data(),
)
def test_checksum_detects_any_single_bit_flip(values, data):
    index = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    flipped = list(values)
    flipped[index] ^= 1 << bit
    assert W.checksum_of(flipped) != W.checksum_of(values)


@given(st.lists(st.integers(min_value=0, max_value=0xFF), max_size=40))
def test_checksum_stays_in_one_byte(values):
    assert 0 <= W.checksum_of(values) < 256


# ---------------------------------------------------------------------------
# Cascade slicing
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.sampled_from([(4, 2), (4, 4), (8, 2), (8, 4), (16, 2)]),
)
def test_split_join_roundtrip(value, shape):
    w, c = shape
    value &= (1 << (w * c)) - 1
    slices = split_value(value, w, c)
    assert len(slices) == c
    assert all(0 <= part < (1 << w) for part in slices)
    assert join_slices(slices, w) == value


# ---------------------------------------------------------------------------
# Crossbar allocator invariants under random operation sequences
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=120),
)
@settings(max_examples=80)
def test_allocator_never_double_books(seed, directions):
    params = RouterParameters(i=8, o=8, w=8, max_d=2)
    config = RouterConfig(params, dilation=2)
    allocator = CrossbarAllocator(config, RandomStream(seed))
    held = []
    for step, direction in enumerate(directions):
        if held and step % 3 == 0:
            allocator.release(held.pop())
        port = allocator.allocate(direction)
        if port is not None:
            assert port not in held
            assert port in config.backward_group(direction)
            held.append(port)
        assert allocator.occupancy() == len(held)
    # Full drain always succeeds.
    for port in held:
        allocator.release(port)
    assert allocator.occupancy() == 0


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30)
def test_allocator_blocks_exactly_when_group_full(seed):
    params = RouterParameters(i=8, o=8, w=8, max_d=2)
    config = RouterConfig(params, dilation=2)
    allocator = CrossbarAllocator(config, RandomStream(seed))
    for direction in range(4):
        assert allocator.allocate(direction) is not None
        assert allocator.allocate(direction) is not None
        assert allocator.allocate(direction) is None


# ---------------------------------------------------------------------------
# Channel: arbitrary traffic is delivered in order after `delay` cycles
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
        max_size=60,
    ),
)
def test_channel_is_a_pure_delay_line(delay, pattern):
    channel = Channel(delay=delay)
    received = []
    sent = []
    for value in pattern + [None] * delay:
        if value is not None:
            channel.a.send(W.data(value))
            sent.append(value)
        channel.advance()
        word = channel.b.recv()
        if word is not None:
            received.append(word.value)
    assert received == sent
