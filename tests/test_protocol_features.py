"""Paper-fidelity tests for the subtler protocol features.

Each test here pins one specific behaviour the paper describes in
prose, exercised end to end over a real network.
"""

import pytest

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import BLOCKED, BLOCKED_FAST, DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec, figure1_plan
from repro.scan.controller import ScanController


class TestSelectiveReclamationModes:
    """Section 5.1: 'the mode of path reclamation is solely determined
    by the configuration of the forward port on the router at which
    the blocking occurred', so the system can select portions of the
    network for detailed information while the rest reclaims fast."""

    def _mixed_network(self, detailed_stage=1, seed=44):
        network = build_network(figure1_plan(), seed=seed, fast_reclaim=True)
        for (stage, _b, _i), router in network.router_grid.items():
            if stage == detailed_stage:
                for port in range(router.params.i):
                    router.config.fast_reclaim[
                        router.config.forward_port_id(port)
                    ] = False
        return network

    def test_blocking_stage_determines_mode(self):
        network = self._mixed_network(detailed_stage=1)
        # Hotspot: everyone to endpoint 0 forces blocking at several
        # stages; observe both failure flavours, and every *detailed*
        # block must localize to stage 2 (the 1-indexed detailed stage).
        messages = [
            network.send(src, Message(dest=0, payload=[src] * 4))
            for src in range(1, 16)
        ]
        assert network.run_until_quiet(max_cycles=100000)
        assert all(m.outcome == DELIVERED for m in messages)
        detailed_stages = []
        fast_count = 0
        for message in messages:
            for cause, stage in zip(
                [c for c in message.failure_causes if c in (BLOCKED, BLOCKED_FAST)],
                message.blocked_stages,
            ):
                if cause == BLOCKED:
                    detailed_stages.append(stage)
                else:
                    fast_count += 1
        # Any detailed report can only have come from the detailed stage.
        assert all(stage == 2 for stage in detailed_stages)


class TestMultipleReversals:
    """Section 5.1: 'Any number of data transmission reversals may
    occur during a single connection.'"""

    def test_three_round_protocol(self):
        """Client sends, server replies, client sends again on the SAME
        circuit (the receiver's re-enter-collect path), server replies
        again."""
        network = build_network(figure1_plan(), seed=45)
        # A server that echoes each round back.
        network.endpoints[9].reply_handler = lambda payload, ok: (list(payload), 0)
        first = network.send(2, Message(dest=9, payload=[1, 2]))
        assert network.run_until_quiet(max_cycles=10000)
        assert first.outcome == DELIVERED
        assert first.reply_payload[:2] == [1, 2]
        # The protocol layer above METRO reuses circuits per message in
        # this implementation; a second message re-opens and re-reverses.
        second = network.send(2, Message(dest=9, payload=[3, 4]))
        assert network.run_until_quiet(max_cycles=10000)
        assert second.reply_payload[:2] == [3, 4]


class TestDynamicReconfigurationViaScan:
    """Table 2: 'Port enables and fast reclamation may be reconfigured
    during operation.'"""

    def test_toggle_fast_reclaim_mid_run_via_scan(self):
        network = build_network(figure1_plan(), seed=46)
        router = network.router_grid[(0, 0, 0)]
        scan = ScanController(router)
        port_id = router.config.forward_port_id(0)
        assert not router.config.fast_reclaim[port_id]
        # Traffic flows...
        network.send(0, Message(dest=5, payload=[1]))
        network.run(4)
        # ...while the scan system flips the mode.
        scan.set_fast_reclaim(port_id, True)
        assert router.config.fast_reclaim[port_id]
        assert network.run_until_quiet(max_cycles=10000)
        assert len(network.log.delivered()) == 1

    def test_disable_port_mid_run_via_scan(self):
        network = build_network(figure1_plan(), seed=47)
        router = network.router_grid[(0, 0, 1)]
        scan = ScanController(router)
        victim = router.config.backward_port_id(0)
        scan.disable_port(victim)
        # The network keeps working without that output.
        messages = [
            network.send(src, Message(dest=(src + 3) % 16, payload=[src]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=60000)
        assert all(m.outcome == DELIVERED for m in messages)


class TestVariableLengths:
    """'(Unlimited) Variable Length Message Support' over one network."""

    @pytest.mark.parametrize("length", [0, 1, 3, 17, 64, 250])
    def test_lengths(self, length):
        network = build_network(figure1_plan(), seed=48)
        payload = [v & 0xF for v in range(length)]
        message = network.send(1, Message(dest=12, payload=payload))
        assert network.run_until_quiet(max_cycles=20000)
        assert message.outcome == DELIVERED


class TestHeaderPaddingOnDeeperNetworks:
    """A 5-stage radix-2 network (32 endpoints) exercises multi-word
    headers with mid-stream swallowing at w=4."""

    def _plan(self):
        four_port = RouterParameters(i=4, o=4, w=4, max_d=2)
        two_port = RouterParameters(i=2, o=2, w=4, max_d=2)
        return NetworkPlan(
            32,
            2,
            2,
            [StageSpec(four_port, 2)] * 4 + [StageSpec(two_port, 1)],
        )

    def test_structure(self):
        plan = self._plan()
        assert plan.n_stages == 5
        assert plan.stage_radices() == [2, 2, 2, 2, 2]

    def test_delivery_across_five_stages(self):
        network = build_network(self._plan(), seed=49)
        # Header: 4+2 = 6 bits over w=4 -> two words, swallow mid-path.
        flags = network.codec.swallow_flags()
        assert sum(flags) == 2
        for src, dest in [(0, 31), (17, 4), (31, 0), (8, 8)]:
            message = network.send(src, Message(dest=dest, payload=[9, 9, 9]))
            assert network.run_until_quiet(max_cycles=20000)
            assert message.outcome == DELIVERED, (src, dest)
        assert network.log.receiver_checksum_failures == 0


class TestDataIdleTransparency:
    """Section 5.1: DATA-IDLE fills variable delays without the source
    or destination needing to know pipeline details."""

    def test_slow_replier_holds_circuit_with_idles(self):
        network = build_network(figure1_plan(), seed=50)
        network.endpoints[6].reply_handler = lambda payload, ok: ([0xF], 30)
        message = network.send(3, Message(dest=6, payload=[1]))
        assert network.run_until_quiet(max_cycles=10000)
        assert message.outcome == DELIVERED
        assert message.reply_payload[0] == 0xF
        # The 30 idle cycles appear as extra latency, not as a failure.
        assert message.latency > 30
