"""Public API surface: every exported name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.network",
    "repro.endpoint",
    "repro.faults",
    "repro.scan",
    "repro.latency_model",
    "repro.harness",
    "repro.baseline",
    "repro.telemetry",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for exported in module.__all__:
        assert hasattr(module, exported), (name, exported)


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_exist(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


def test_top_level_convenience_names():
    import repro

    network = repro.build_network(repro.figure1_plan(), seed=1)
    message = network.send(0, repro.Message(dest=3, payload=[1]))
    assert network.run_until_quiet(max_cycles=5000)
    assert message.outcome == "delivered"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


SUBMODULES = [
    "repro.core.cascade",
    "repro.core.crossbar",
    "repro.core.parameters",
    "repro.core.random_source",
    "repro.core.router",
    "repro.core.words",
    "repro.sim.channel",
    "repro.sim.component",
    "repro.sim.engine",
    "repro.sim.trace",
    "repro.sim.waveform",
    "repro.network.analysis",
    "repro.network.builder",
    "repro.network.cascaded",
    "repro.network.dot",
    "repro.network.fattree",
    "repro.network.headers",
    "repro.network.multibutterfly",
    "repro.network.topology",
    "repro.network.validate",
    "repro.endpoint.interface",
    "repro.endpoint.messages",
    "repro.endpoint.traffic",
    "repro.faults.diagnosis",
    "repro.faults.injector",
    "repro.faults.model",
    "repro.scan.chain",
    "repro.scan.controller",
    "repro.scan.multitap",
    "repro.scan.netconfig",
    "repro.scan.registers",
    "repro.scan.tap",
    "repro.latency_model.blocking",
    "repro.latency_model.contemporaries",
    "repro.latency_model.cost",
    "repro.latency_model.equations",
    "repro.latency_model.general",
    "repro.latency_model.implementations",
    "repro.harness.batch",
    "repro.harness.breakdown",
    "repro.harness.experiment",
    "repro.harness.fault_sweep",
    "repro.harness.load_sweep",
    "repro.harness.parallel",
    "repro.harness.reporting",
    "repro.harness.saturation",
    "repro.harness.utilization",
    "repro.baseline.builder",
    "repro.baseline.harness",
    "repro.baseline.wormhole",
    "repro.telemetry.hub",
    "repro.telemetry.metrics",
    "repro.telemetry.nullobj",
    "repro.telemetry.profiler",
    "repro.telemetry.spans",
    "repro.cli",
]


@pytest.mark.parametrize("name", SUBMODULES)
def test_every_module_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 30, name
