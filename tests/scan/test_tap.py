"""The 16-state TAP FSM and register plumbing."""

import pytest

from repro.scan import tap as T


def test_reset_from_any_state_with_five_ones():
    controller = T.TapController()
    # Wander somewhere deep.
    for tms in (0, 1, 0, 0):
        controller.step(tms)
    assert controller.state == T.SHIFT_DR
    for _ in range(5):
        controller.step(1)
    assert controller.state == T.TEST_LOGIC_RESET


def test_reset_selects_idcode():
    controller = T.TapController(idcode=0xDEADBEEF)
    controller.step(1)
    assert controller.instruction == T.IDCODE


def test_full_state_walk_dr_branch():
    controller = T.TapController()
    expected = [
        (0, T.RUN_TEST_IDLE),
        (1, T.SELECT_DR_SCAN),
        (0, T.CAPTURE_DR),
        (0, T.SHIFT_DR),
        (0, T.SHIFT_DR),
        (1, T.EXIT1_DR),
        (0, T.PAUSE_DR),
        (0, T.PAUSE_DR),
        (1, T.EXIT2_DR),
        (0, T.SHIFT_DR),
        (1, T.EXIT1_DR),
        (1, T.UPDATE_DR),
        (0, T.RUN_TEST_IDLE),
    ]
    for tms, state in expected:
        controller.step(tms)
        assert controller.state == state


def test_full_state_walk_ir_branch():
    controller = T.TapController()
    expected = [
        (0, T.RUN_TEST_IDLE),
        (1, T.SELECT_DR_SCAN),
        (1, T.SELECT_IR_SCAN),
        (0, T.CAPTURE_IR),
        (0, T.SHIFT_IR),
        (1, T.EXIT1_IR),
        (0, T.PAUSE_IR),
        (1, T.EXIT2_IR),
        (1, T.UPDATE_IR),
        (1, T.SELECT_DR_SCAN),
        (1, T.SELECT_IR_SCAN),
        (1, T.TEST_LOGIC_RESET),
    ]
    for tms, state in expected:
        controller.step(tms)
        assert controller.state == state


def _shift_ir(controller, opcode):
    controller.step(0)  # idle
    controller.step(1)
    controller.step(1)
    controller.step(0)  # -> capture-ir
    controller.step(0)  # capture edge -> shift-ir
    for index in range(T.IR_WIDTH):
        last = index == T.IR_WIDTH - 1
        controller.step(1 if last else 0, (opcode >> index) & 1)
    controller.step(1)  # update-ir
    controller.step(0)  # idle


def _shift_dr(controller, bits):
    controller.step(1)
    controller.step(0)
    controller.step(0)
    out = []
    for index, bit in enumerate(bits):
        last = index == len(bits) - 1
        out.append(controller.step(1 if last else 0, bit))
    controller.step(1)
    controller.step(0)
    return out


def test_idcode_reads_back():
    controller = T.TapController(idcode=0xCAFEF00D)
    controller.step(0)  # leave reset: IDCODE selected
    bits = _shift_dr(controller, [0] * 32)
    value = sum((1 if b else 0) << i for i, b in enumerate(bits))
    assert value == 0xCAFEF00D


def test_bypass_is_single_bit():
    controller = T.TapController()
    _shift_ir(controller, T.BYPASS)
    out = _shift_dr(controller, [1, 0, 1, 1, 0])
    # One-bit register: input re-emerges delayed by exactly one shift.
    assert out[1:] == [1, 0, 1, 1]


def test_unknown_instruction_falls_back_to_bypass():
    controller = T.TapController()
    _shift_ir(controller, 0b0110)  # not implemented
    assert controller.instruction == T.BYPASS


def test_data_register_capture_and_update():
    seen = {}
    reg = T.DataRegister(
        4,
        capture=lambda: [1, 0, 1, 0],
        update=lambda bits: seen.__setitem__("bits", bits),
    )
    controller = T.TapController(registers={T.SAMPLE: reg})
    _shift_ir(controller, T.SAMPLE)
    out = _shift_dr(controller, [1, 1, 1, 1])
    assert out == [1, 0, 1, 0]  # captured value emerges LSB-first
    assert seen["bits"] == [1, 1, 1, 1]  # shifted-in value applied


def test_capture_width_mismatch_rejected():
    reg = T.DataRegister(4, capture=lambda: [1])
    with pytest.raises(ValueError):
        reg.capture()
