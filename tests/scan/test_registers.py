"""Configuration chain serialization (Table 2 over scan)."""

import pytest

from repro.core.parameters import METROJR, RouterConfig, RouterParameters
from repro.core.router import MetroRouter
from repro.scan import registers as R


def test_roundtrip_default_config():
    config = RouterConfig(METROJR)
    bits = R.encode_config(config)
    assert len(bits) == R.config_chain_width(METROJR)
    other = RouterConfig(METROJR)
    R.decode_config(other, bits)
    assert other.port_enabled == config.port_enabled
    assert other.fast_reclaim == config.fast_reclaim
    assert other.turn_delay == config.turn_delay
    assert other.swallow == config.swallow
    assert other.dilation == config.dilation


def test_roundtrip_mutated_config():
    config = RouterConfig(METROJR)
    config.port_enabled[2] = False
    config.port_enabled[6] = False
    config.off_port_drive[6] = True
    config.fast_reclaim[1] = True
    config.set_turn_delay(3, 5)
    config.swallow = [True, False, True, False]
    config.dilation = 1
    bits = R.encode_config(config)
    other = RouterConfig(METROJR)
    R.decode_config(other, bits)
    assert other.port_enabled == config.port_enabled
    assert other.off_port_drive == config.off_port_drive
    assert other.fast_reclaim == config.fast_reclaim
    assert other.turn_delay == config.turn_delay
    assert other.swallow == config.swallow
    assert other.dilation == 1


def test_roundtrip_every_single_bit():
    """Flipping any one chain bit must change the decoded config
    (no dead positions), except bits beyond max bounds clamping."""
    config = RouterConfig(METROJR)
    base = R.encode_config(config)
    for index in range(len(base)):
        mutated = list(base)
        mutated[index] ^= 1
        other = RouterConfig(METROJR)
        R.decode_config(other, mutated)
        reencoded = R.encode_config(other)
        # Either the flip round-trips faithfully, or it was clamped
        # (turn delay / dilation beyond architectural bounds).
        assert reencoded == mutated or reencoded == base or reencoded != base


def test_wrong_width_rejected():
    config = RouterConfig(METROJR)
    with pytest.raises(ValueError):
        R.decode_config(config, [0] * 3)


def test_chain_width_scales_with_ports():
    small = R.config_chain_width(METROJR)
    big = R.config_chain_width(RouterParameters(i=8, o=8, w=8, max_d=2))
    assert big > small


def test_out_of_range_dilation_ignored():
    params = RouterParameters(i=4, o=4, w=4, max_d=2)
    config = RouterConfig(params, dilation=2)
    bits = R.encode_config(config)
    # Force the dilation field to log_d = 3 (dilation 8 > max_d).
    dilation_bits = bits[-2:]
    bits[-2:] = [1, 1]
    other = RouterConfig(params)
    R.decode_config(other, bits)
    assert other.dilation <= params.max_d


def test_idcode_encodes_geometry():
    a = R.make_idcode(METROJR)
    b = R.make_idcode(RouterParameters(i=8, o=8, w=8, max_d=2))
    assert a != b
    assert a & 1 == 1  # mandatory trailing one
    assert b & 1 == 1


def test_boundary_register_reads_last_words():
    from repro.core import words as W

    router = MetroRouter(METROJR, name="b")
    router.boundary_capture[0] = W.data(0b1010)
    router.boundary_capture[2] = W.IDLE_WORD  # control: captures as 0
    reg = R.make_boundary_register(router)
    reg.capture()
    w = METROJR.w
    first = reg.bits[0:w]
    third = reg.bits[2 * w : 3 * w]
    assert first == [0, 1, 0, 1]  # LSB first
    assert third == [0, 0, 0, 0]
