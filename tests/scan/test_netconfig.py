"""Network-wide scan configuration."""

import pytest

from repro.endpoint.messages import BLOCKED, BLOCKED_FAST, DELIVERED, Message
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.scan.netconfig import NetworkScanFabric
from repro.scan.registers import make_idcode


@pytest.fixture
def network():
    return build_network(figure1_plan(), seed=66)


def test_inventory_matches_board(network):
    fabric = NetworkScanFabric(network)
    rows = fabric.inventory()
    assert [row["stage"] for row in rows] == [0, 1, 2]
    assert [row["routers"] for row in rows] == [8, 8, 8]
    for stage_index, row in enumerate(rows):
        params = network.plan.stages[stage_index].params
        assert row["idcodes"] == [make_idcode(params)] * 8


def test_configure_single_router(network):
    fabric = NetworkScanFabric(network)
    fabric.configure_router(
        (1, 0, 2), lambda config: config.swallow.__setitem__(1, True)
    )
    assert network.router_grid[(1, 0, 2)].config.swallow[1]
    assert not network.router_grid[(1, 0, 1)].config.swallow[1]


def test_reclaim_policy_applies_per_stage(network):
    fabric = NetworkScanFabric(network)
    fabric.set_fast_reclaim_policy(detailed_stages=[1])
    for (stage, _b, _i), router in network.router_grid.items():
        fast_bits = [
            router.config.fast_reclaim[router.config.forward_port_id(p)]
            for p in range(router.params.i)
        ]
        if stage == 1:
            assert not any(fast_bits)
        else:
            assert all(fast_bits)


def test_mixed_policy_blocking_modes_in_traffic(network):
    """With stage 1 detailed and the rest fast, hotspot traffic shows
    both failure flavours and every detailed block is at stage 2
    (1-indexed), reproducing the Section 5.1 mixed-mode story over an
    all-scan configuration path."""
    fabric = NetworkScanFabric(network)
    fabric.set_fast_reclaim_policy(detailed_stages=[1])
    messages = [
        network.send(src, Message(dest=0, payload=[src] * 4))
        for src in range(1, 16)
    ]
    assert network.run_until_quiet(max_cycles=100000)
    assert all(m.outcome == DELIVERED for m in messages)
    for message in messages:
        for cause, stage in zip(
            [c for c in message.failure_causes if c in (BLOCKED, BLOCKED_FAST)],
            message.blocked_stages,
        ):
            if cause == BLOCKED:
                assert stage == 2


def test_disable_and_reenable_via_fabric(network):
    fabric = NetworkScanFabric(network)
    router = network.router_grid[(0, 0, 0)]
    port_id = router.config.backward_port_id(1)
    fabric.disable_port((0, 0, 0), port_id, drive=True)
    assert not router.config.port_enabled[port_id]
    assert router.config.off_port_drive[port_id]
    fabric.enable_port((0, 0, 0), port_id)
    assert router.config.port_enabled[port_id]


def test_configure_all(network):
    fabric = NetworkScanFabric(network)

    def bump_turn_delay(config):
        config.set_turn_delay(0, 2)

    fabric.configure_all(bump_turn_delay)
    assert all(
        router.config.turn_delay[0] == 2 for router in network.all_routers()
    )
