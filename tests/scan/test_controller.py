"""Host-side scan control of a live router."""

from repro.core import words as W
from repro.core.parameters import METROJR, RouterParameters
from repro.core.router import MetroRouter
from repro.scan import registers as R
from repro.scan.controller import ScanController, attach_scan


def _router(params=None):
    return MetroRouter(params or METROJR, name="scanme")


def test_read_idcode():
    router = _router()
    controller = ScanController(router)
    assert controller.read_idcode() == R.make_idcode(router.params)


def test_read_config_is_nondestructive():
    router = _router()
    before = R.encode_config(router.config)
    controller = ScanController(router)
    bits = controller.read_config_bits()
    assert bits == before
    assert R.encode_config(router.config) == before  # unchanged


def test_disable_and_enable_port_via_scan():
    router = _router()
    controller = ScanController(router)
    port_id = router.config.backward_port_id(1)
    controller.disable_port(port_id)
    assert not router.config.port_enabled[port_id]
    controller.enable_port(port_id)
    assert router.config.port_enabled[port_id]


def test_set_fast_reclaim_via_scan():
    router = _router()
    controller = ScanController(router)
    port_id = router.config.forward_port_id(2)
    controller.set_fast_reclaim(port_id, True)
    assert router.config.fast_reclaim[port_id]
    # Other options untouched.
    assert all(router.config.port_enabled)


def test_set_dilation_via_scan():
    router = _router()
    controller = ScanController(router)
    controller.set_dilation(1)
    assert router.config.dilation == 1
    controller.set_dilation(2)
    assert router.config.dilation == 2


def test_sample_boundary_sees_port_traffic():
    router = _router()
    controller = ScanController(router)
    router.boundary_capture[0] = W.data(0xB)
    words = controller.sample_boundary()
    assert words[0] == 0xB
    assert words[1] == 0


def test_extest_drives_disabled_port():
    """EXTEST through a disabled backward port pushes a test word out
    on the attached wire — the raw material of port-isolation tests."""
    from repro.sim.channel import Channel
    from repro.sim.engine import Engine

    router = _router()
    engine = Engine()
    engine.add_component(router)
    channel = Channel(name="under-test")
    engine.add_channel(channel)
    router.attach_backward(1, channel.a)
    controller = ScanController(router)
    port_id = router.config.backward_port_id(1)
    controller.disable_port(port_id, drive=True)
    controller.extest_drive(1, 0x9)
    engine.step()  # router pushes the word; it crosses the 1-cycle wire
    assert channel.b.recv() == W.data(0x9)


def test_multitap_second_port_usable_after_first_dies():
    router = _router(RouterParameters(i=4, o=4, w=4, max_d=2, sp=2))
    attach_scan(router)
    first = ScanController(router, port=0)
    assert first.read_idcode() == R.make_idcode(router.params)
    router.multitap.kill_port(0)
    second = ScanController(router, port=1)
    assert second.read_idcode() == R.make_idcode(router.params)


def test_multitap_nonowner_is_ignored():
    router = _router(RouterParameters(i=4, o=4, w=4, max_d=2, sp=2))
    attach_scan(router)
    owner = ScanController(router, port=0)
    owner.reset()
    router.multitap.step(0, 0)  # port 0 leaves reset: claims ownership
    assert router.multitap.owner == 0
    # Port 1 clocks do nothing while port 0 owns the chain.
    state_before = router.multitap.state()
    router.multitap.step(1, 1)
    assert router.multitap.state() == state_before


def test_multitap_reset_releases_ownership():
    router = _router(RouterParameters(i=4, o=4, w=4, max_d=2, sp=2))
    attach_scan(router)
    router.multitap.step(0, 0)  # claim
    assert router.multitap.owner == 0
    for _ in range(5):
        router.multitap.step(0, 1)  # TMS=1 returns to reset
    assert router.multitap.owner is None
