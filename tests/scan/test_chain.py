"""Daisy-chained scan paths across multiple routers."""

import pytest

from repro.core.parameters import METROJR, RouterParameters
from repro.core.router import MetroRouter
from repro.scan import registers as R
from repro.scan.chain import ScanChain


def _routers(n=3, params=None):
    return [
        MetroRouter(params or METROJR, name="chained{}".format(index))
        for index in range(n)
    ]


def test_read_all_idcodes():
    routers = _routers(3)
    chain = ScanChain(routers)
    codes = chain.read_all_idcodes()
    assert codes == [R.make_idcode(r.params) for r in routers]


def test_mixed_geometry_idcodes_in_chain_order():
    small = MetroRouter(METROJR, name="small")
    big = MetroRouter(RouterParameters(i=8, o=8, w=8, max_d=2), name="big")
    chain = ScanChain([small, big])
    codes = chain.read_all_idcodes()
    assert codes[0] == R.make_idcode(small.params)
    assert codes[1] == R.make_idcode(big.params)
    assert codes[0] != codes[1]


def test_configure_one_router_leaves_others_alone():
    routers = _routers(4)
    chain = ScanChain(routers)
    chain.configure(2, lambda config: config.port_enabled.__setitem__(5, False))
    assert not routers[2].config.port_enabled[5]
    for index in (0, 1, 3):
        assert all(routers[index].config.port_enabled)


def test_configure_each_router_in_turn():
    routers = _routers(3)
    chain = ScanChain(routers)
    for index in range(3):
        chain.configure(
            index, lambda config: config.fast_reclaim.__setitem__(index, True)
        )
    for index, router in enumerate(routers):
        assert router.config.fast_reclaim[index]
        # Exactly one bit set per router.
        assert sum(router.config.fast_reclaim) == 1


def test_configure_dilation_through_chain():
    routers = _routers(2)
    chain = ScanChain(routers)

    def set_dilation(config):
        config.dilation = 1

    chain.configure(1, set_dilation)
    assert routers[1].config.dilation == 1
    assert routers[0].config.dilation == METROJR.max_d


def test_wrong_width_rejected():
    routers = _routers(2)
    chain = ScanChain(routers)
    from repro.scan import tap as T

    chain.load_instructions([T.BYPASS, T.CONFIG])
    with pytest.raises(ValueError):
        chain.write_config(1, [0, 1, 0])


def test_opcode_count_must_match():
    chain = ScanChain(_routers(2))
    from repro.scan import tap as T

    with pytest.raises(ValueError):
        chain.load_instructions([T.BYPASS])


def test_empty_chain_rejected():
    with pytest.raises(ValueError):
        ScanChain([])


def test_long_chain_of_sixteen():
    routers = _routers(16)
    chain = ScanChain(routers)
    codes = chain.read_all_idcodes()
    assert len(codes) == 16
    assert len(set(codes)) == 1  # identical parts
    chain.configure(9, lambda config: config.swallow.__setitem__(0, True))
    assert routers[9].config.swallow[0]
    assert not routers[8].config.swallow[0]
