"""Scan-layer round trip: Table 2 written and read back over MultiTAP.

The existing netconfig tests check that scan *writes* land in the live
``RouterConfig``; these tests close the loop in pure scan traffic: the
configuration is written through a chain, then *read back* through the
chain (CONFIG capture shifted out through every other router's BYPASS
bit) and decoded — every Table 2 field must survive the full
serialize/shift/capture/deserialize journey and agree with
``repro.core.parameters``.
"""

import pytest

from repro.core.parameters import RouterConfig
from repro.network.builder import build_network
from repro.network.topology import figure1_plan
from repro.scan import registers as R
from repro.scan import tap as T
from repro.scan.netconfig import NetworkScanFabric


@pytest.fixture
def network():
    return build_network(figure1_plan(), seed=66)


def read_config_via_scan(chain, target_index):
    """One router's CONFIG bits as captured on the chain.

    All other routers are in BYPASS.  The capture is non-destructive:
    the bits shifted *in* are the target's current encoding, so the
    Update-DR at the end rewrites the state it just read.
    """
    n = len(chain)
    opcodes = [T.BYPASS] * n
    opcodes[target_index] = T.CONFIG
    chain.load_instructions(opcodes)
    lengths = chain._dr_lengths(opcodes)
    image = []
    # Bits for the last router in the chain shift in first.
    for index in reversed(range(n)):
        if index == target_index:
            image.extend(R.encode_config(chain.routers[index].config))
        else:
            image.extend([0] * lengths[index])
    out = chain.scan_dr(image)
    # Captured bits emerge last-router-first.
    offset = sum(lengths[i] for i in range(target_index + 1, n))
    return out[offset : offset + lengths[target_index]]


def decoded_config(router, bits):
    scratch = RouterConfig(router.params)
    R.decode_config(scratch, bits)
    return scratch


TABLE2_FIELDS = (
    "port_enabled",
    "off_port_drive",
    "fast_reclaim",
    "turn_delay",
    "swallow",
    "dilation",
)


def assert_configs_equal(actual, expected):
    for field in TABLE2_FIELDS:
        assert getattr(actual, field) == getattr(expected, field), field


def test_default_config_reads_back(network):
    fabric = NetworkScanFabric(network)
    router = network.router_grid[(1, 0, 2)]
    bits = read_config_via_scan(fabric.chains[1], 2)
    assert len(bits) == R.config_chain_width(router.params)
    assert_configs_equal(decoded_config(router, bits), router.config)


def test_every_table2_field_round_trips(network):
    """Mutate every Table 2 option on one router by scan, then read it
    all back by scan: the wire encoding loses nothing."""
    fabric = NetworkScanFabric(network)
    key, slot = (1, 0, 2), 2

    def mutate(config):
        config.port_enabled[3] = False
        config.port_enabled[6] = False
        config.off_port_drive[6] = True
        config.fast_reclaim[1] = True
        config.fast_reclaim[5] = True
        config.set_turn_delay(0, 5)
        config.set_turn_delay(7, 2)
        config.swallow[1] = True
        config.swallow[3] = True
        config.dilation = 1

    fabric.configure_router(key, mutate)
    router = network.router_grid[key]

    # The live config took the write...
    assert router.config.port_enabled[3] is False
    assert router.config.dilation == 1

    # ...and the scan read-back reproduces every field exactly.
    bits = read_config_via_scan(fabric.chains[1], slot)
    readback = decoded_config(router, bits)
    assert_configs_equal(readback, router.config)

    # Independently, it matches the expectation built directly on
    # core.parameters (no scan involved).
    expected = RouterConfig(router.params)
    mutate(expected)
    assert_configs_equal(readback, expected)


def test_read_back_is_non_destructive(network):
    fabric = NetworkScanFabric(network)
    router = network.router_grid[(0, 0, 5)]
    fabric.configure_router(
        (0, 0, 5), lambda config: config.swallow.__setitem__(2, True)
    )
    before = R.encode_config(router.config)
    read_config_via_scan(fabric.chains[0], 5)
    assert R.encode_config(router.config) == before


def test_neighbours_unaffected_by_targeted_write(network):
    fabric = NetworkScanFabric(network)
    fabric.configure_router(
        (2, 0, 1), lambda config: config.fast_reclaim.__setitem__(0, True)
    )
    for slot in range(8):
        router = network.routers[2][slot]
        bits = read_config_via_scan(fabric.chains[2], slot)
        assert_configs_equal(decoded_config(router, bits), router.config)
        if slot != 1:
            assert not any(router.config.fast_reclaim)


def test_round_trip_through_redundant_multitap_port(network):
    """MultiTAP redundancy: after the primary TAP port dies, the same
    write/read-back works through the spare port's chain."""
    for router in network.routers[1]:
        from repro.scan.controller import attach_scan

        attach_scan(router, sp=2)
        router.multitap.kill_port(0)
    fabric = NetworkScanFabric(network, port=1)
    key = (1, 1, 0)
    slot = network.routers[1].index(network.router_grid[key])
    fabric.configure_router(
        key, lambda config: config.set_turn_delay(2, 3)
    )
    router = network.router_grid[key]
    assert router.config.turn_delay[2] == 3
    bits = read_config_via_scan(fabric.chains[1], slot)
    assert_configs_equal(decoded_config(router, bits), router.config)
