"""Golden-trace regression: a fixed-seed run must never silently drift.

One small multibutterfly (the Figure 1 network) carries a fixed
closed-loop workload for a fixed number of cycles.  The committed
fixture pins the *exact* per-cycle waveform on the first endpoints'
injection channels, a checksum over all recorded lanes, and every
delivered message's (source, dest, submit cycle, latency, attempts).

Any change to router arbitration, channel pipelining, endpoint
protocol, seeding, or engine ordering shows up here as a diff against
the fixture — bit-level regressions cannot hide behind aggregate
statistics.  If a change is *intentional*, regenerate with::

    PYTHONPATH=src python tests/test_golden_trace.py --regen

and review the fixture diff like any other code change.

The same scenario is also pinned on the ``vector`` backend against its
own fixture: the array layer's equivalence is byte-for-byte, so its
fixture must be *identical* to the reference one — drift in the
vectorized code shows up here without re-deriving any expectation, and
a fixture pair that disagrees means the backends themselves split.
``--regen`` rewrites both fixtures.
"""

import hashlib
import json
import os

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_trace.json"
)
GOLDEN_VECTOR_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_trace_vector.json"
)
FIXTURES = {"reference": GOLDEN_PATH, "vector": GOLDEN_VECTOR_PATH}

SEED = 1234
RATE = 0.05
MESSAGE_WORDS = 5
CYCLES = 300
RECORDED_ENDPOINTS = 4


def _golden_state(backend="reference"):
    """Run the fixed scenario and distill it to comparable primitives."""
    from repro.core.random_source import derive_seed
    from repro.endpoint.traffic import UniformRandomTraffic
    from repro.network.builder import build_network
    from repro.network.topology import figure1_plan
    from repro.sim.waveform import WaveformRecorder

    network = build_network(
        figure1_plan(), seed=SEED, fast_reclaim=True, backend=backend
    )

    # The injection channels of the first few endpoints, in index order.
    injection = {}
    for link in network.links:
        if link.src.kind == "endpoint" and link.src.index < RECORDED_ENDPOINTS:
            name = "ep{}".format(link.src.index)
            injection[name] = network.channels[(link.src.key(), link.dst.key())]
    recorder = WaveformRecorder(
        dict(sorted(injection.items())), max_cycles=CYCLES
    )
    network.engine.add_component(recorder)

    traffic = UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=RATE,
        message_words=MESSAGE_WORDS,
        seed=derive_seed(SEED, "golden-traffic"),
    )
    traffic.attach(network)
    network.run(CYCLES)

    lanes = {
        name: "".join(_symbol(word) for word in lane)
        for name, lane in recorder.lanes.items()
    }
    checksum = hashlib.sha256(
        json.dumps(lanes, sort_keys=True).encode("utf-8")
    ).hexdigest()
    deliveries = sorted(
        [m.source, m.dest, m.queued_cycle, m.total_latency, m.attempts]
        for m in network.log.delivered()
    )
    return {
        "seed": SEED,
        "cycles": CYCLES,
        "final_cycle": network.engine.cycle,
        "lanes": lanes,
        "waveform_sha256": checksum,
        "n_delivered": len(deliveries),
        "deliveries": deliveries,
    }


def _symbol(word):
    from repro.sim.waveform import _symbol as symbol

    return symbol(word)


import pytest


@pytest.mark.parametrize("backend", sorted(FIXTURES))
def test_golden_trace_matches_fixture(backend):
    with open(FIXTURES[backend]) as handle:
        golden = json.load(handle)
    state = _golden_state(backend)
    assert state["n_delivered"] > 0  # the scenario actually exercises routing
    # Per-cycle waveforms, lane by lane, so a mismatch names the lane.
    assert sorted(state["lanes"]) == sorted(golden["lanes"])
    for name in sorted(golden["lanes"]):
        assert state["lanes"][name] == golden["lanes"][name], name
    assert state["waveform_sha256"] == golden["waveform_sha256"]
    assert state["deliveries"] == golden["deliveries"]
    assert state == golden


def test_golden_trace_is_reproducible_in_process():
    # The scenario itself is deterministic: two fresh runs agree exactly.
    assert _golden_state() == _golden_state()


def test_backend_fixtures_agree():
    # Byte-identical backends pin byte-identical fixtures; a diff here
    # means the committed expectations themselves have split.
    with open(GOLDEN_PATH) as handle:
        reference = json.load(handle)
    with open(GOLDEN_VECTOR_PATH) as handle:
        vector = json.load(handle)
    assert vector == reference


def _regen():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    for backend, path in sorted(FIXTURES.items()):
        state = _golden_state(backend)
        with open(path, "w") as handle:
            json.dump(state, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote {} ({} deliveries, checksum {})".format(
            path, state["n_delivered"], state["waveform_sha256"][:12]))


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
