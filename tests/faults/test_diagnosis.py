"""Scan-driven fault localization and masking."""

import pytest

from repro.core.words import RouterStatus
from repro.endpoint.messages import DELIVERED, Message, TIMEOUT
from repro.faults.diagnosis import (
    diagnose_and_mask,
    diagnose_stage,
    mask_link,
    port_isolation_test,
    suspect_stage_from_statuses,
)
from repro.faults.injector import FaultInjector, router_to_router_channels
from repro.faults.model import CorruptLink, DeadLink
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _network(seed=21):
    return build_network(figure1_plan(), seed=seed)


class TestStatusLocalization:
    def test_all_clean(self):
        expected = [0x10, 0x20, 0x30]
        statuses = [RouterStatus(False, c, 5) for c in expected]
        assert suspect_stage_from_statuses(expected, statuses) is None

    def test_checksum_mismatch_localizes(self):
        expected = [0x10, 0x20, 0x30]
        statuses = [
            RouterStatus(False, 0x10, 5),
            RouterStatus(False, 0xFF, 5),  # corrupted entering stage 1
            RouterStatus(False, 0x30, 5),
        ]
        assert suspect_stage_from_statuses(expected, statuses) == 1

    def test_blocked_status_localizes(self):
        expected = [0x10, 0x20, 0x30]
        statuses = [
            RouterStatus(False, 0x10, 5),
            RouterStatus(True, 0x0, 0),
        ]
        assert suspect_stage_from_statuses(expected, statuses) == 1

    def test_truncated_status_list_localizes(self):
        expected = [0x10, 0x20, 0x30]
        statuses = [RouterStatus(False, 0x10, 5)]
        assert suspect_stage_from_statuses(expected, statuses) == 1


class TestPortIsolation:
    def test_healthy_wire_passes(self):
        network = _network()
        src_key, dst_key = router_to_router_channels(network)[0]
        passed, observations = port_isolation_test(network, src_key, dst_key)
        assert passed
        assert len(observations) == 5

    def test_dead_wire_fails(self):
        network = _network()
        src_key, dst_key = router_to_router_channels(network)[1]
        FaultInjector(network).now(DeadLink(src_key=src_key, dst_key=dst_key))
        passed, observations = port_isolation_test(network, src_key, dst_key)
        assert not passed

    def test_stuck_bits_fail(self):
        network = _network()
        src_key, dst_key = router_to_router_channels(network)[2]
        FaultInjector(network).now(
            CorruptLink(src_key=src_key, dst_key=dst_key, probability=1.0, mask=0b1)
        )
        passed, observations = port_isolation_test(network, src_key, dst_key)
        assert not passed
        # Every observation differs in exactly the corrupted bit.
        assert all((drove ^ seen) == 0b1 for drove, seen in observations)

    def test_ports_restored_after_test(self):
        network = _network()
        src_key, dst_key = router_to_router_channels(network)[3]
        port_isolation_test(network, src_key, dst_key)
        _, s_stage, s_block, s_index, s_port = src_key
        _, d_stage, d_block, d_index, d_port = dst_key
        up = network.router_grid[(s_stage, s_block, s_index)]
        down = network.router_grid[(d_stage, d_block, d_index)]
        assert up.config.port_enabled[up.config.backward_port_id(s_port)]
        assert down.config.port_enabled[down.config.forward_port_id(d_port)]

    def test_rejects_endpoint_wires(self):
        network = _network()
        endpoint_wire = next(
            key for key in network.channels if key[0][0] == "endpoint"
        )
        with pytest.raises(ValueError):
            port_isolation_test(network, *endpoint_wire)


class TestStageSweep:
    def test_sweep_finds_only_the_faulty_wire(self):
        network = _network()
        victims = [
            key
            for key in router_to_router_channels(network)
            if key[0][1] == 0
        ]
        bad = victims[4]
        FaultInjector(network).now(DeadLink(src_key=bad[0], dst_key=bad[1]))
        failing = diagnose_stage(network, stage=0)
        assert failing == [bad]

    def test_clean_network_sweep_is_empty(self):
        network = _network()
        assert diagnose_stage(network, stage=1) == []


class TestMasking:
    def test_masked_link_never_used(self):
        """After diagnose_and_mask, a dead wire causes no more timeouts:
        the allocator simply never selects the disabled port."""
        network = _network(seed=22)
        bad = router_to_router_channels(network)[6]
        FaultInjector(network).now(DeadLink(src_key=bad[0], dst_key=bad[1]))
        masked = diagnose_and_mask(network, stage=bad[0][1])
        assert bad in masked
        before = dict(network.log.attempt_failures)
        messages = [
            network.send(src, Message(dest=(src + 5) % 16, payload=[1, 2]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=120000)
        assert all(m.outcome == DELIVERED for m in messages)
        after = network.log.attempt_failures
        assert after.get(TIMEOUT, 0) == before.get(TIMEOUT, 0)

    def test_unmasked_dead_link_does_cause_timeouts(self):
        """Control for the test above: without masking, some attempts
        randomly select the dead wire and time out."""
        network = _network(seed=22)
        bad = router_to_router_channels(network)[6]
        FaultInjector(network).now(DeadLink(src_key=bad[0], dst_key=bad[1]))
        for _round in range(6):
            messages = [
                network.send(src, Message(dest=(src + 5) % 16, payload=[1, 2]))
                for src in range(16)
            ]
            network.run_until_quiet(max_cycles=120000)
        causes = network.log.attempt_failures
        assert causes.get(TIMEOUT, 0) + causes.get("died", 0) >= 1
