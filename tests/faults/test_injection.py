"""Fault injection and the network's recovery behaviour.

These tests exercise the paper's core fault-tolerance claim: the
combination of source-responsible retry and random output selection
"guarantees that the source can eventually find an uncongested,
fault-free path through the network, provided one exists" (Section 4).
"""

import pytest

from repro.endpoint.messages import DELIVERED, DIED, Message, NACKED, TIMEOUT
from repro.faults.injector import (
    FaultInjector,
    random_fault_scenario,
    router_to_router_channels,
)
from repro.faults.model import CorruptLink, DeadLink, DeadRouter, DisabledPort
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _network(seed=1, **kwargs):
    return build_network(figure1_plan(), seed=seed, **kwargs)


class TestDeadLink:
    def test_static_dead_link_routed_around(self):
        network = _network(seed=2)
        injector = FaultInjector(network)
        src_key, dst_key = router_to_router_channels(network)[0]
        injector.now(DeadLink(src_key=src_key, dst_key=dst_key))
        for src in range(16):
            message = network.send(src, Message(dest=(src + 5) % 16, payload=[1]))
            assert network.run_until_quiet(max_cycles=30000)
            assert message.outcome == DELIVERED, (src, message.failure_causes)

    def test_dynamic_link_death_mid_message(self):
        """Kill a link while a long message is streaming over it; the
        source detects the dead connection and retries successfully."""
        network = _network(seed=3)
        injector = FaultInjector(network)
        # A long message guarantees the stream is still in flight when
        # the fault lands at cycle 8.
        message = network.send(4, Message(dest=11, payload=[7] * 120))
        network.run(6)
        # Find a channel the connection currently occupies.
        victim = None
        for (src_key, dst_key), channel in network.channels.items():
            if src_key[0] == "router" and channel.in_flight() > 0:
                victim = channel
                break
        assert victim is not None
        victim.dead = True
        assert network.run_until_quiet(max_cycles=60000)
        assert message.outcome == DELIVERED
        assert message.attempts >= 2
        assert any(c in (TIMEOUT, DIED) for c in message.failure_causes)

    def test_revert_restores_link(self):
        network = _network(seed=4)
        injector = FaultInjector(network)
        src_key, dst_key = router_to_router_channels(network)[3]
        fault = injector.now(DeadLink(src_key=src_key, dst_key=dst_key))
        assert network.channels[(src_key, dst_key)].dead
        fault.revert(network)
        assert not network.channels[(src_key, dst_key)].dead


class TestDeadRouter:
    def test_dead_router_traffic_survives(self):
        network = _network(seed=5)
        injector = FaultInjector(network)
        injector.now(DeadRouter(1, 0, 2))
        messages = [
            network.send(src, Message(dest=(src + 3) % 16, payload=[src]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=120000)
        for message in messages:
            assert message.outcome == DELIVERED

    def test_dynamic_router_death(self):
        network = _network(seed=6)
        injector = FaultInjector(network)
        injector.at(5, DeadRouter(0, 0, 1))
        messages = [
            network.send(src, Message(dest=(src + 9) % 16, payload=[src, src]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=120000)
        for message in messages:
            assert message.outcome == DELIVERED

    def test_resources_not_wedged_after_router_death(self):
        """Neighbours' watchdogs must free everything the dead router
        was touching — the stateless-network property under faults."""
        network = _network(seed=7)
        message = network.send(2, Message(dest=13, payload=[1] * 60))
        network.run(8)
        injector = FaultInjector(network)
        injector.now(DeadRouter(0, 0, 0))
        assert network.run_until_quiet(max_cycles=60000)
        for (stage, block, index), router in network.router_grid.items():
            if router.dead:
                continue
            assert router.busy_backward_ports() == [], router.name
        assert message.outcome == DELIVERED


class TestCorruptLink:
    def test_corruption_detected_and_retried(self):
        """Corrupt every stage-0 output wire: each message crosses
        exactly one noisy hop, so its payload is certainly damaged.

        (Corrupting *every* wire with one XOR mask would self-cancel
        over even hop counts — flip twice and the word is whole again —
        so the noisy region is chosen with odd crossing parity.)
        """
        network = _network(seed=8)
        injector = FaultInjector(network)
        for src_key, dst_key in router_to_router_channels(network):
            if src_key[1] == 0:  # wires leaving stage 0
                injector.now(
                    CorruptLink(
                        src_key=src_key, dst_key=dst_key, probability=1.0, mask=0xF
                    )
                )
        messages = [
            network.send(src, Message(dest=(src + 1) % 16, payload=[3, 1, 4]))
            for src in range(16)
        ]
        network.run(4000)
        assert network.log.attempt_failures.get(NACKED, 0) >= 1

    def test_intermittent_corruption(self):
        network = _network(seed=9)
        injector = FaultInjector(network)
        for src_key, dst_key in router_to_router_channels(network)[:4]:
            injector.now(
                CorruptLink(
                    src_key=src_key, dst_key=dst_key, probability=0.3, seed=42
                )
            )
        messages = [
            network.send(src, Message(dest=(src + 7) % 16, payload=list(range(8))))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=120000)
        assert all(m.outcome == DELIVERED for m in messages)

    def test_receiver_counts_checksum_failures(self):
        network = _network(seed=10)
        injector = FaultInjector(network)
        for src_key, dst_key in router_to_router_channels(network):
            if src_key[1] == 0:  # odd crossing parity: stage 0 only
                injector.now(
                    CorruptLink(src_key=src_key, dst_key=dst_key, probability=1.0)
                )
        network.send(0, Message(dest=9, payload=[5, 5]))
        network.run(2000)
        assert network.log.receiver_checksum_failures >= 1


class TestScheduling:
    def test_faults_fire_at_scheduled_cycle(self):
        network = _network(seed=11)
        injector = FaultInjector(network)
        fault = injector.at(10, DeadRouter(2, 0, 0))
        network.run(5)
        assert not network.router_grid[(2, 0, 0)].dead
        assert injector.pending()
        network.run(10)
        assert network.router_grid[(2, 0, 0)].dead
        assert not injector.pending()
        assert injector.applied[0][1] is fault

    def test_transient_fault_reverts(self):
        network = _network(seed=12)
        injector = FaultInjector(network)
        fault = DeadRouter(1, 1, 0)
        injector.at(5, fault)
        injector.revert_at(20, fault)
        network.run(30)
        assert not network.router_grid[(1, 1, 0)].dead


class TestAppliedHistory:
    def test_applied_records_cycle_schedule_and_action(self):
        network = _network(seed=18)
        injector = FaultInjector(network)
        fault = DeadRouter(1, 0, 1)
        injector.at(5, fault)
        injector.revert_at(12, fault)
        network.run(20)
        actions = [
            (entry.fault, entry.scheduled, entry.action)
            for entry in injector.applied
        ]
        assert actions == [(fault, 5, "apply"), (fault, 12, "revert")]
        assert all(e.cycle >= e.scheduled for e in injector.applied)

    def test_late_application_warns(self, caplog):
        """Scheduling a fault for a cycle the engine already passed
        still applies it, but loudly — a silent late fault makes a
        scenario look deterministic when it is not."""
        import logging

        network = _network(seed=19)
        network.run(50)
        injector = FaultInjector(network)
        fault = injector.at(10, DeadRouter(1, 0, 0))
        with caplog.at_level(logging.WARNING, logger="repro.faults"):
            network.run(1)
        assert network.router_grid[(1, 0, 0)].dead
        assert any(
            "applied late" in record.message for record in caplog.records
        )
        entry = injector.applied[0]
        assert entry.scheduled == 10
        assert entry.cycle > entry.scheduled

    def test_on_time_application_does_not_warn(self, caplog):
        import logging

        network = _network(seed=20)
        injector = FaultInjector(network)
        injector.at(10, DeadRouter(1, 0, 0))
        with caplog.at_level(logging.WARNING, logger="repro.faults"):
            network.run(20)
        assert not any(
            "applied late" in record.message for record in caplog.records
        )


class TestPicklable:
    def test_static_faults_round_trip(self):
        import pickle

        network = _network(seed=21)
        src_key, dst_key = router_to_router_channels(network)[0]
        faults = [
            DeadLink(src_key=src_key, dst_key=dst_key),
            CorruptLink(src_key=src_key, dst_key=dst_key, probability=0.5, seed=3),
            DeadRouter(1, 0, 2),
            DisabledPort(0, 0, 0, 4),
        ]
        # Apply first so lazy state (channel handles, RNGs) is resolved,
        # then verify pickling sheds it.
        injector = FaultInjector(network)
        for fault in faults:
            injector.now(fault)
        for fault in faults:
            clone = pickle.loads(pickle.dumps(fault))
            assert clone.kind == fault.kind
            # Link faults shed the live channel handle; the keys survive.
            assert getattr(clone, "channel", None) is None
            if hasattr(fault, "src_key"):
                assert (clone.src_key, clone.dst_key) == (
                    fault.src_key,
                    fault.dst_key,
                )

    def test_corrupt_link_clone_reseeds(self):
        import pickle

        fault = CorruptLink(
            src_key=("router", 0, 0, 0, 0),
            dst_key=("router", 1, 0, 0, 0),
            probability=0.5,
            seed=9,
        )
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.seed == 9


class TestDisabledPort:
    def test_disabled_port_masks_then_restores(self):
        network = _network(seed=13)
        router = network.router_grid[(0, 0, 0)]
        fault = DisabledPort(0, 0, 0, router.config.backward_port_id(1))
        fault.apply(network)
        assert not router.config.port_enabled[router.config.backward_port_id(1)]
        fault.revert(network)
        assert router.config.port_enabled[router.config.backward_port_id(1)]


class TestRandomScenario:
    def test_reproducible(self):
        network = _network(seed=14)
        a = random_fault_scenario(network, n_dead_links=3, n_dead_routers=2, seed=5)
        b = random_fault_scenario(network, n_dead_links=3, n_dead_routers=2, seed=5)
        assert [f.describe() for f in a] == [f.describe() for f in b]

    def test_counts(self):
        network = _network(seed=15)
        faults = random_fault_scenario(
            network, n_dead_links=4, n_dead_routers=3, seed=6
        )
        kinds = [f.kind for f in faults]
        assert kinds.count("link-dead") == 4
        assert kinds.count("router-dead") == 3

    def test_exclude_final_stage(self):
        network = _network(seed=16)
        faults = random_fault_scenario(
            network, n_dead_routers=10, seed=7, exclude_final_stage=True
        )
        last = network.plan.n_stages - 1
        assert all(f.stage != last for f in faults)

    def test_scenario_network_still_delivers(self):
        network = _network(seed=17)
        injector = FaultInjector(network)
        for fault in random_fault_scenario(
            network, n_dead_links=4, n_dead_routers=1, seed=8,
            exclude_final_stage=True,
        ):
            injector.now(fault)
        messages = [
            network.send(src, Message(dest=(src + 11) % 16, payload=[1, 2]))
            for src in range(16)
        ]
        assert network.run_until_quiet(max_cycles=200000)
        delivered = sum(1 for m in messages if m.outcome == DELIVERED)
        assert delivered == 16
