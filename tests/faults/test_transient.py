"""Transient (duty-cycled) faults: scheduling, revert timing, pickling."""

import pickle

import pytest

from repro.faults.injector import (
    FaultInjector,
    random_transient_scenario,
    router_to_router_channels,
)
from repro.faults.model import FlakyLink, FlakyRouter, TransientFault
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _network(seed=31):
    return build_network(figure1_plan(), seed=seed)


def _wire(network, index=0):
    return router_to_router_channels(network)[index]


class TestDutyCycle:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        events = []
        for _attempt in range(2):
            network = _network()
            src, dst = _wire(network)
            fault = FlakyLink(src_key=src, dst_key=dst, mtbf=80, mttr=40, seed=9)
            injector = FaultInjector(network)
            injector.transient(fault)
            network.run(2000)
            events.append(
                [(e.cycle, e.action) for e in injector.applied]
            )
        assert events[0] == events[1]
        assert events[0]  # 2000 cycles >> mtbf: transitions happened

    def test_apply_and_revert_alternate(self):
        network = _network()
        src, dst = _wire(network)
        fault = FlakyLink(src_key=src, dst_key=dst, mtbf=60, mttr=30, seed=2)
        injector = FaultInjector(network)
        injector.transient(fault)
        network.run(3000)
        actions = [e.action for e in injector.applied]
        assert actions[0] == "apply"
        assert all(
            a != b for a, b in zip(actions, actions[1:])
        ), "apply/revert must strictly alternate"

    def test_revert_timing_restores_the_channel(self):
        """The wire is dead exactly between an apply and its revert."""
        network = _network()
        src, dst = _wire(network)
        channel = network.channels[(src, dst)]
        fault = FlakyLink(src_key=src, dst_key=dst, mtbf=50, mttr=25, seed=4)
        injector = FaultInjector(network)
        injector.transient(fault)
        assert not channel.dead
        # Step cycle by cycle and check the channel tracks the recorded
        # transitions: dead from each apply until the matching revert.
        for _ in range(400):
            network.run(1)
            down = False
            for event in injector.applied:
                down = event.action == "apply"
            assert channel.dead == down
        assert len(injector.applied) >= 2

    def test_start_delays_the_first_failure(self):
        network = _network()
        src, dst = _wire(network)
        fault = FlakyLink(
            src_key=src, dst_key=dst, mtbf=5, mttr=5, seed=1, start=500
        )
        injector = FaultInjector(network)
        injector.transient(fault)
        network.run(499)
        assert injector.applied == []
        network.run(600)
        assert injector.applied
        assert injector.applied[0].cycle >= 500

    def test_flaky_router_toggles_dead_flag(self):
        network = _network()
        fault = FlakyRouter(1, 0, 0, mtbf=40, mttr=40, seed=3)
        router = network.router_grid[(1, 0, 0)]
        injector = FaultInjector(network)
        injector.transient(fault)
        network.run(1000)
        actions = {e.action for e in injector.applied}
        assert actions == {"apply", "revert"}
        assert router.dead == (injector.applied[-1].action == "apply")

    def test_burst_failures_cluster(self):
        """burst=3 packs failures closer together than the MTBF cadence."""
        network = _network()
        src, dst = _wire(network)
        fault = FlakyLink(
            src_key=src,
            dst_key=dst,
            mtbf=400,
            mttr=10,
            seed=6,
            burst=3,
            burst_gap=5,
        )
        injector = FaultInjector(network)
        injector.transient(fault)
        network.run(4000)
        applies = [e.cycle for e in injector.applied if e.action == "apply"]
        assert len(applies) >= 3
        gaps = [b - a for a, b in zip(applies, applies[1:])]
        # Within a burst the gap is ~mttr+burst_gap, far under the MTBF.
        assert min(gaps) < 100

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            TransientFault(mtbf=0, mttr=10)
        with pytest.raises(ValueError):
            TransientFault(mtbf=10, mttr=0)
        with pytest.raises(ValueError):
            TransientFault(mtbf=10, mttr=10, burst=0)
        with pytest.raises(ValueError):
            FlakyLink(mtbf=10, mttr=10)  # needs channel or keys


class TestPickling:
    def test_flaky_link_round_trips(self):
        network = _network()
        src, dst = _wire(network)
        fault = FlakyLink(src_key=src, dst_key=dst, mtbf=70, mttr=35, seed=8)
        # Use it (resolves the channel + draws from the RNG)...
        injector = FaultInjector(network)
        injector.transient(fault)
        network.run(500)
        # ...then pickle: the live channel and RNG must not ride along.
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.channel is None
        assert clone.src_key == src and clone.dst_key == dst
        assert (clone.mtbf, clone.mttr, clone.seed) == (70, 35, 8)

    def test_flaky_router_round_trips(self):
        fault = FlakyRouter(1, 0, 2, mtbf=50, mttr=25, seed=5, burst=2)
        clone = pickle.loads(pickle.dumps(fault))
        assert (clone.stage, clone.block, clone.index) == (1, 0, 2)
        assert clone.burst == 2


class TestRandomTransientScenario:
    def test_reproducible(self):
        network = _network()
        first = random_transient_scenario(
            network, n_flaky_links=3, n_flaky_routers=2, seed=12
        )
        second = random_transient_scenario(
            network, n_flaky_links=3, n_flaky_routers=2, seed=12
        )
        assert [f.describe() for f in first] == [f.describe() for f in second]
        assert [f.seed for f in first] == [f.seed for f in second]

    def test_router_pool_excludes_edge_stages(self):
        network = _network()
        faults = random_transient_scenario(
            network, n_flaky_routers=50, seed=3
        )
        last = network.plan.n_stages - 1
        stages = {f.stage for f in faults}
        assert 0 not in stages
        assert last not in stages

    def test_per_fault_seeds_differ(self):
        network = _network()
        faults = random_transient_scenario(network, n_flaky_links=4, seed=7)
        seeds = [f.seed for f in faults]
        assert len(set(seeds)) == len(seeds)
