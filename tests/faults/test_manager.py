"""FaultManager: evidence accumulation, localization, and the closed loop."""

import pytest

from repro.faults.manager import DEFAULT_WEIGHTS, FaultManager
from repro.harness.chaos import run_chaos_point
from repro.network.builder import build_network
from repro.network.topology import figure1_plan


def _network(seed=21):
    return build_network(figure1_plan(), seed=seed)


class _Status:
    def __init__(self, checksum, blocked=False):
        self.checksum = checksum
        self.blocked = blocked


class _Send:
    def __init__(self, statuses, message=None):
        self.statuses = statuses
        self.message = message


class _Endpoint:
    """Stand-in supplying only what _localize consumes."""

    def __init__(self, expected):
        self._expected = expected

    def expected_stage_checksums(self, message):
        return self._expected


class TestLocalization:
    def test_blocked_stage_is_one_based(self):
        manager = FaultManager(_network())
        # Blocking reported at stage k (1-based) implicates router k-1.
        assert manager._localize(None, None, "blocked", 3) == 2
        assert manager._localize(None, None, "blocked", 1) == 0

    def test_status_mismatch_names_the_stage(self):
        manager = FaultManager(_network())
        endpoint = _Endpoint([10, 20, 30])
        send = _Send([_Status(10), _Status(99), _Status(30)])
        assert manager._localize(endpoint, send, "corrupted", None) == 1

    def test_clean_statuses_blame_the_final_stage(self):
        network = _network()
        manager = FaultManager(network)
        endpoint = _Endpoint([10, 20, 30])
        send = _Send([_Status(10), _Status(20), _Status(30)])
        assert (
            manager._localize(endpoint, send, "timeout", None)
            == network.plan.n_stages - 1
        )


class TestEvidence:
    def test_suspicion_accumulates_by_weight(self):
        manager = FaultManager(_network(), decay_half_life=0)
        manager._bump(2, DEFAULT_WEIGHTS["timeout"], cycle=10)
        manager._bump(2, DEFAULT_WEIGHTS["timeout"], cycle=11)
        assert manager.suspicion[2] == pytest.approx(2.0)

    def test_suspicion_decays_by_half_life(self):
        manager = FaultManager(_network(), decay_half_life=100)
        manager._bump(1, 4.0, cycle=0)
        score = manager._bump(1, 0.5, cycle=100)
        # One half-life later the old 4.0 is worth 2.0.
        assert score == pytest.approx(2.5)

    def test_threshold_crossing_schedules_a_repair_and_stops(self):
        network = _network()
        manager = FaultManager(network, threshold=2.0)
        endpoint = _Endpoint([10, 20, 30])
        send = _Send([_Status(10), _Status(99), _Status(30)])
        manager._on_attempt_failure(50, endpoint, send, "corrupted", None)
        assert not manager.repairs_due()
        manager._on_attempt_failure(51, endpoint, send, "corrupted", None)
        assert manager.repairs_due()
        assert manager.due == [1]
        assert network.engine._stop_requested

    def test_blocked_evidence_is_weak(self):
        manager = FaultManager(_network(), threshold=2.0)
        for cycle in range(30):
            manager._on_attempt_failure(cycle, None, None, "blocked", 2)
        # 30 blocked attempts at weight 0.05 stay under threshold.
        assert not manager.repairs_due()
        assert manager.evidence_count == 30

    def test_cooldown_suppresses_rescheduling(self):
        manager = FaultManager(_network(), threshold=1.0, cooldown=500)
        endpoint = _Endpoint([10])
        send = _Send([_Status(99)])
        manager._on_attempt_failure(10, endpoint, send, "timeout", None)
        assert manager.due == [0]
        manager.due.clear()
        manager._cooldown_until[0] = 600
        manager._on_attempt_failure(200, endpoint, send, "timeout", None)
        assert manager.due == []
        manager._on_attempt_failure(700, endpoint, send, "timeout", None)
        assert manager.due == [0]


class TestQuiesce:
    def test_quiesce_without_owner_is_a_no_op(self):
        network = _network()
        router = network.router_grid[(1, 0, 0)]
        assert router.quiesce_backward_port(0) is False

    def test_quiesce_releases_a_live_owner(self):
        from repro.endpoint.traffic import UniformRandomTraffic

        network = _network()
        UniformRandomTraffic(
            n_endpoints=network.plan.n_endpoints,
            w=network.codec.w,
            rate=0.05,
            message_words=20,
            seed=5,
        ).attach(network)
        # Run until some router holds a backward-port circuit.
        owner_port = None
        for _ in range(100):
            network.run(10)
            for router in network.router_grid.values():
                for q, owner in enumerate(router._bwd_owner):
                    if owner is not None:
                        owner_port = (router, q)
                        break
                if owner_port:
                    break
            if owner_port:
                break
        assert owner_port is not None, "no circuit formed under load"
        router, q = owner_port
        assert router.quiesce_backward_port(q) is True
        assert router._bwd_owner[q] is None


# Empirically tuned closed-loop demo: two middle-stage routers die and
# a wire goes flaky mid-soak; the managed run masks them online and the
# delivered rate rebounds to >= 90% of a fault-free baseline, while the
# unmanaged control stays degraded.  All three runs are pure functions
# of the seed.
_DEMO = dict(
    seed=11,
    n_windows=25,
    window_cycles=400,
    warmup_windows=4,
    rate=0.02,
    mtbf=600,
    mttr=1200,
    max_attempts=60,
)


def _tail_rate(result, n=6):
    tail = result.windows[-n:]
    return sum(tail) / len(tail)


@pytest.fixture(scope="module")
def demo():
    clean = run_chaos_point(
        self_heal=False, n_flaky_links=0, n_dead_routers=0, **_DEMO
    )
    healed = run_chaos_point(
        self_heal=True,
        n_flaky_links=1,
        n_dead_routers=2,
        oracle=True,
        **_DEMO
    )
    control = run_chaos_point(
        self_heal=False, n_flaky_links=1, n_dead_routers=2, **_DEMO
    )
    return clean, healed, control


class TestClosedLoop:
    def test_masking_restores_the_delivered_rate(self, demo):
        clean, healed, control = demo
        baseline = sum(clean.windows) / len(clean.windows)
        assert healed.mask_events, "manager masked nothing"
        assert _tail_rate(healed) >= 0.9 * baseline
        assert _tail_rate(control) < 0.9 * baseline
        assert _tail_rate(healed) > _tail_rate(control)

    def test_masks_cover_the_dead_routers(self, demo):
        _clean, healed, _control = demo
        dead = {
            event[1]
            for event in healed.fault_events
            if event[1].startswith("router-dead")
        }
        assert len(dead) == 2
        # Every masked wire names a specific stage; the repair records
        # show which stages the evidence implicated.
        assert all("stage" in mask for mask in healed.mask_events)
        assert healed.repairs, "no repair records"

    def test_oracle_green_during_injection_and_masking(self, demo):
        _clean, healed, _control = demo
        assert healed.oracle_violations == 0

    def test_control_run_takes_no_repair_actions(self, demo):
        _clean, _healed, control = demo
        assert control.mask_events == []
        assert control.repairs == []
        assert control.evidence_count == 0

    def test_recovery_verification_marks_repairs(self, demo):
        _clean, healed, _control = demo
        verified = [r for r in healed.repairs if r["verified"]]
        assert verified, "no repair verified by delivered-rate rebound"
        assert all(r["verified_cycle"] is not None for r in verified)
