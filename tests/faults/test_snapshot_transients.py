"""Snapshot/restore under an *active* transient fault: a FlakyLink
captured mid-outage must resume dead, with the same remaining-MTTR
schedule, and keep taking the exact transitions the uninterrupted run
takes."""

import pickle

import pytest

from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector
from repro.faults.model import FlakyLink
from repro.harness.load_sweep import figure1_network
from repro.sim.snapshot import restore_network, snapshot_network


def _roundtrip(snap):
    return pickle.loads(pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL))


def _flaky_soak(backend):
    network = figure1_network(seed=11, backend=backend)
    injector = FaultInjector(network)
    src_key, dst_key = sorted(network.channels)[3]
    fault = injector.transient(
        FlakyLink(
            src_key=src_key,
            dst_key=dst_key,
            mtbf=120,
            mttr=90,
            seed=7,
            start=20,
        )
    )
    UniformRandomTraffic(
        n_endpoints=network.plan.n_endpoints,
        w=network.codec.w,
        rate=0.02,
        message_words=8,
        seed=12,
    ).attach(network)
    return network, injector, fault


def _run_to_mid_outage(network, fault, max_cycles=6000):
    while network.engine.cycle < max_cycles:
        network.run(10)
        if fault.down:
            return
    raise AssertionError("flaky link never went down")


def _transitions(injector):
    return [
        (entry.cycle, entry.fault.describe(), entry.action)
        for entry in injector.applied
    ]


def _schedule_state(fault):
    return {
        "down": fault.down,
        "next_change": fault._next_change,
        "burst_left": fault._burst_left,
        "rng": fault._rng.getstate(),
    }


@pytest.mark.parametrize("backend", ["reference", "events"])
def test_mid_outage_snapshot_resumes_same_mttr_schedule(backend):
    reference_net, reference_inj, reference_fault = _flaky_soak(backend)
    network, injector, fault = _flaky_soak(backend)
    for net, f in ((reference_net, reference_fault), (network, fault)):
        _run_to_mid_outage(net, f)
    assert network.engine.cycle == reference_net.engine.cycle

    snap = _roundtrip(snapshot_network(network, extras={"injector": injector}))
    restored = restore_network(snap)
    rinj = restored.extras["injector"]
    (rfault,) = rinj._transients

    # The outage state — including the drawn-but-unreached recovery
    # cycle and the RNG stream for every future draw — survives.
    assert _schedule_state(rfault) == _schedule_state(fault)
    assert rfault.down
    rchannel = restored.network.channels[(fault.src_key, fault.dst_key)]
    assert rchannel.dead, "restored link should still be mid-outage"
    assert _transitions(rinj) == _transitions(injector)

    # Run long enough for the outage to end and the next one to start:
    # every copy must take identical transitions at identical cycles.
    for net in (reference_net, network, restored.network):
        net.run(800)
    reference_transitions = _transitions(reference_inj)
    assert _transitions(injector) == reference_transitions
    assert _transitions(rinj) == reference_transitions
    actions = [action for _, _, action in reference_transitions]
    assert "revert" in actions, "outage never ended on schedule"
    assert actions.count("apply") >= 2, "next outage never arrived"

    # And the link itself agrees with the schedule on every copy.
    assert rfault.down == fault.down == reference_fault.down
    assert rchannel.dead == rfault.down
