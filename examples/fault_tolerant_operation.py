"""Fault tolerance end to end: dynamic faults, retry, diagnose, mask.

Demonstrates the paper's full fault story on the Figure 1 network:

1. traffic flows normally;
2. a router dies and a wire goes dead *while the network runs* —
   sources detect damaged connections (silence, missing statuses) and
   their stochastic retries route around the faults;
3. the scan system then localizes the dead wire with port-isolation
   tests and masks it by disabling the facing ports;
4. traffic continues with no further timeouts.

Run:  python examples/fault_tolerant_operation.py
"""

from repro import Message, build_network, figure1_plan
from repro.faults import DeadLink, DeadRouter, FaultInjector
from repro.faults.diagnosis import diagnose_and_mask
from repro.faults.injector import router_to_router_channels


def send_wave(network, tag):
    messages = [
        network.send(src, Message(dest=(src + 5) % 16, payload=[tag, src]))
        for src in range(16)
    ]
    network.run_until_quiet(max_cycles=200000)
    delivered = sum(1 for m in messages if m.outcome == "delivered")
    retries = sum(m.attempts - 1 for m in messages)
    return delivered, retries


def main():
    network = build_network(figure1_plan(), seed=11)
    injector = FaultInjector(network)

    delivered, retries = send_wave(network, tag=1)
    print("Healthy network:    {}/16 delivered, {} retries".format(
        delivered, retries))

    # Strike: one router and one wire die mid-operation.
    dead_wire = router_to_router_channels(network)[9]
    injector.now(DeadRouter(1, 0, 3))
    injector.now(DeadLink(src_key=dead_wire[0], dst_key=dead_wire[1]))
    print("\nInjected: dead router r1.0.3 and dead wire {} -> {}".format(
        dead_wire[0], dead_wire[1]))

    delivered, retries = send_wave(network, tag=2)
    failures = dict(network.log.attempt_failures)
    print("Faulted network:    {}/16 delivered, {} retries".format(
        delivered, retries))
    print("Attempt failures so far: {}".format(failures))

    # Diagnose and mask the dead wire so nobody stumbles on it again.
    masked = []
    for stage in range(network.plan.n_stages - 1):
        masked.extend(diagnose_and_mask(network, stage))
    print("\nScan diagnosis masked {} wire(s): {}".format(
        len(masked), ["{} -> {}".format(s, d) for s, d in masked]))

    before = dict(network.log.attempt_failures)
    delivered, retries = send_wave(network, tag=3)
    after = network.log.attempt_failures
    new_timeouts = after.get("timeout", 0) - before.get("timeout", 0)
    print("Masked network:     {}/16 delivered, {} retries, "
          "{} new timeouts".format(delivered, retries, new_timeouts))


if __name__ == "__main__":
    main()
