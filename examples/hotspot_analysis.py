"""Congestion analysis: find the hot routers under a skewed workload.

Attaches a utilization probe to the Figure 3 network, drives a
hotspot workload (a fraction of all traffic targets one endpoint), and
prints per-stage utilization plus the hottest routers — then shows the
measured latency penalty the hotspot victims pay versus bystanders.

Run:  python examples/hotspot_analysis.py
"""

from repro.endpoint.traffic import HotspotTraffic
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_table
from repro.harness.utilization import attach_probe

HOT = 0
FRACTION = 0.5
RATE = 0.05


def main():
    network = figure3_network(seed=77)
    probe = attach_probe(network, period=2)
    traffic = HotspotTraffic(
        64, 8, rate=RATE, hotspot=HOT, fraction=FRACTION,
        message_words=20, seed=78,
    )
    traffic.attach(network)
    network.run(6000)

    print("Workload: {}% of traffic to endpoint {} (rate {})\n".format(
        int(FRACTION * 100), HOT, RATE))

    stages = probe.stage_utilization()
    print(format_table(
        [{"stage": s, "mean utilization": u, "imbalance (max/mean)":
          probe.imbalance(s)} for s, u in sorted(stages.items())],
        title="Per-stage backward-port utilization",
        floatfmt="{:.3f}",
    ))

    print()
    hottest = probe.hottest(6)
    print(format_table(
        [{"router": "r{}.{}.{}".format(*key), "utilization": value}
         for key, value in hottest],
        title="Hottest routers (expect the final-stage routers of "
        "endpoint {}'s block)".format(HOT),
        floatfmt="{:.3f}",
    ))

    # Latency split: messages to the hotspot vs everyone else.
    to_hot = [m.latency for m in network.log.delivered() if m.dest == HOT]
    to_rest = [m.latency for m in network.log.delivered() if m.dest != HOT]
    print()
    print("Delivered to hotspot: {} msgs, mean latency {:.1f} cycles".format(
        len(to_hot), sum(to_hot) / len(to_hot)))
    print("Delivered elsewhere:  {} msgs, mean latency {:.1f} cycles".format(
        len(to_rest), sum(to_rest) / len(to_rest)))
    print("\nStochastic selection keeps the early stages balanced; the "
          "pain concentrates exactly where the paper says it must — on "
          "the hot endpoint's own final-stage ports, where retries queue.")


if __name__ == "__main__":
    main()
