"""Width cascading: two 4-bit routers acting as one 8-bit router.

Shows the two hooks of Section 5.1: shared randomness makes the
slices allocate identically, and the wired-AND IN-USE check catches a
corrupted header slice the moment the allocations diverge, shutting
the connection down on every member before bad data spreads.

Run:  python examples/width_cascading.py
"""

from repro.core import words as W
from repro.core.cascade import CascadeGroup, join_slices, split_value
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import SharedRandomBus
from repro.core.router import MetroRouter
from repro.sim.channel import Channel
from repro.sim.engine import Engine


def build_cascade(c=2, seed=5):
    params = RouterParameters(i=4, o=4, w=4, max_d=2)
    bus = SharedRandomBus(seed=seed)
    engine = Engine()
    members, fwd, bwd = [], [], []
    for index in range(c):
        router = MetroRouter(
            params,
            name="slice{}".format(index),
            config=RouterConfig(params, dilation=2),
            random_stream=bus,
        )
        engine.add_component(router)
        f, b = [], []
        for p in range(4):
            channel = Channel(name="f{}:{}".format(index, p))
            engine.add_channel(channel)
            router.attach_forward(p, channel.b)
            f.append(channel.a)
        for q in range(4):
            channel = Channel(name="b{}:{}".format(index, q))
            engine.add_channel(channel)
            router.attach_backward(q, channel.a)
            b.append(channel.b)
        members.append(router)
        fwd.append(f)
        bwd.append(b)
    group = CascadeGroup(members)
    engine.add_component(group)
    return engine, members, group, fwd, bwd


def main():
    engine, members, group, fwd, bwd = build_cascade(c=2)

    # An 8-bit word split across two 4-bit slices.
    wide_value = 0xA7
    slices = split_value(wide_value, 4, 2)
    print("Wide word {:#04x} -> slices {}".format(wide_value, slices))
    print("Rejoined: {:#04x}".format(join_slices(slices, 4)))

    # Route a wide stream: both slices carry the same header word so
    # they make the same routing decision from the shared random bus.
    header = W.data(0b1000)  # direction 1
    for index in range(2):
        fwd[index][0].send(header)
    engine.step()
    engine.step()
    ports = [m.connected_backward_port(0) for m in members]
    print("\nBoth slices chose backward port: {} (consistent: {})".format(
        ports, group.consistent()))

    # Stream the data slices through.
    for word_slices in (split_value(0xA7, 4, 2), split_value(0x3C, 4, 2)):
        for index in range(2):
            fwd[index][0].send(W.data(word_slices[index]))
        engine.step()
    engine.step()
    out = [bwd[index][ports[0]].recv() for index in range(2)]
    print("Wide word reassembled downstream: {:#04x}".format(
        join_slices([w.value for w in out], 4)))

    # Tear down cleanly, then corrupt one slice's header: the wired-AND
    # IN-USE check fires and contains the fault on both members.
    for index in range(2):
        fwd[index][0].send(W.DROP_WORD)
    engine.run(3)

    print("\nNow a fault: slice 1 sees a flipped direction bit...")
    fwd[0][0].send(W.data(0b0000))
    fwd[1][0].send(W.data(0b1000))
    engine.run(2)
    print("IN-USE mismatches detected: {}".format(group.mismatches))
    print("Connections shut down on all members: busy ports = {}".format(
        [m.busy_backward_ports() for m in members]))


if __name__ == "__main__":
    main()
