"""Remote-memory read: the paper's motivating request/reply example.

Section 5.1 (Data Idle): "In a low-latency, distributed-memory
multiprocessor, the sending endpoint might turn the connection around
to get a fast reply to a read request.  The delay associated with
preparing the read data ... may depend on whether the data item
requested currently resides in the remote node's cache or in main
memory.  The remote node can send DATA-IDLE words to fill the
variable delay."

This example runs exactly that protocol over a METRO network: each
endpoint serves a small "memory"; clients send a read request (the
address), the connection TURNs, the server replies after a cache-hit
or memory-miss delay (DATA-IDLE fills the gap on the wire), and the
reply streams back over the already-open circuit — no second
connection setup.

Run:  python examples/distributed_memory_read.py
"""

import random

from repro import Message, build_network, figure1_plan

CACHE_HIT_DELAY = 2      # cycles to produce data from "cache"
MEMORY_MISS_DELAY = 25   # cycles to produce data from "main memory"
WORDS_PER_LINE = 4       # a 4-word cache line, like the paper's example


class MemoryServer:
    """Reply handler: serves 4-word lines with hit/miss latency."""

    def __init__(self, node, seed):
        self.rng = random.Random(seed)
        # A tiny word-addressed memory, distinct per node.
        self.memory = {
            addr: [(node + addr + offset) & 0xF for offset in range(WORDS_PER_LINE)]
            for addr in range(16)
        }
        self.hits = 0
        self.misses = 0

    def __call__(self, payload, checksum_ok):
        if not checksum_ok or not payload:
            return [], 0
        address = payload[0] & 0xF
        line = self.memory[address]
        if self.rng.random() < 0.7:
            self.hits += 1
            return line, CACHE_HIT_DELAY
        self.misses += 1
        return line, MEMORY_MISS_DELAY


def main():
    network = build_network(figure1_plan(), seed=7)
    servers = []
    for endpoint in network.endpoints:
        server = MemoryServer(endpoint.index, seed=endpoint.index * 31)
        endpoint.reply_handler = server
        servers.append(server)

    rng = random.Random(99)
    reads = []
    for _ in range(40):
        client = rng.randrange(16)
        home = rng.randrange(16)
        if home == client:
            continue
        address = rng.randrange(16)
        message = network.send(client, Message(dest=home, payload=[address]))
        reads.append((client, home, address, message))
        network.run_until_quiet()

    hits = sum(s.hits for s in servers)
    misses = sum(s.misses for s in servers)
    print("Remote reads issued: {} ({} hits, {} misses)".format(
        len(reads), hits, misses))

    ok = 0
    hit_latencies, miss_latencies = [], []
    for client, home, address, message in reads:
        expected = [(home + address + offset) & 0xF for offset in range(WORDS_PER_LINE)]
        if message.outcome == "delivered" and message.reply_payload[:-1] == expected:
            ok += 1
            bucket = (
                hit_latencies
                if message.latency < MEMORY_MISS_DELAY + 20
                else miss_latencies
            )
            bucket.append(message.latency)
    print("Correct replies: {}/{}".format(ok, len(reads)))
    if hit_latencies:
        print("Cache-hit read latency:  mean {:.1f} cycles".format(
            sum(hit_latencies) / len(hit_latencies)))
    if miss_latencies:
        print("Memory-miss read latency: mean {:.1f} cycles "
              "(DATA-IDLE held the circuit open)".format(
                  sum(miss_latencies) / len(miss_latencies)))


if __name__ == "__main__":
    main()
