"""A wire-level timing diagram of one complete METRO transaction.

Records every hop of a message's path through the Figure 1 network and
prints the ASCII timing lanes: you can watch the header shift stage to
stage, the payload stream behind it, the TURN reverse the circuit, the
STATUS words come back, the ACK, the hand-back TURN and the closing
DROP — the entire Section 4 protocol on one screen.  Also writes a
standard VCD file you can open in GTKWave.

Run:  python examples/timing_diagram.py
"""

from repro import Message, build_network, figure1_plan
from repro.sim.waveform import WaveformRecorder

SRC, DEST = 5, 15


def main():
    network = build_network(figure1_plan(), seed=42)
    # Record every channel; after the run, show the hops the connection
    # actually used (random selection decides at run time).
    recorder = WaveformRecorder(
        {channel.name: channel for channel in network.channels.values()},
        max_cycles=64,
    )
    network.engine.add_component(recorder)

    message = network.send(SRC, Message(dest=DEST, payload=[0xC, 0xA, 0xF, 0xE]))
    network.run_until_quiet(max_cycles=2000)
    print("message: {} in {} cycles\n".format(message.outcome, message.latency))

    # Pick the lanes that carried anything.
    active = {
        name: lane
        for name, lane in recorder.lanes.items()
        if any(word is not None for word in lane)
    }
    # Order path lanes by first activity to follow the wavefront.
    ordered = sorted(
        active, key=lambda n: next(
            i for i, w in enumerate(active[n]) if w is not None
        )
    )
    trimmed = WaveformRecorder({}, max_cycles=None)
    trimmed.start_cycle = recorder.start_cycle
    trimmed.lanes = {name: active[name] for name in ordered}
    print(trimmed.ascii_diagram(end=message.latency + 6))

    with open("metro_transaction.vcd", "w") as handle:
        handle.write(trimmed.to_vcd())
    print("\nWrote metro_transaction.vcd (open with GTKWave)")


if __name__ == "__main__":
    main()
