"""Scan-controlled configuration: the Table 2 options over a TAP.

Walks a METRO router's IEEE 1149.1 TAP through the operations the
paper describes (Section 5.1, Scan Support): read the IDCODE,
reconfigure dilation and fast reclamation through the configuration
chain, disable a port for isolated testing while the router keeps
routing, and fall back to the second TAP port (MultiTAP) when the
first scan path fails.

Run:  python examples/scan_configuration.py
"""

from repro.core.parameters import RouterParameters
from repro.core.router import MetroRouter
from repro.scan.controller import ScanController, attach_scan
from repro.scan.registers import config_chain_width, make_idcode


def main():
    params = RouterParameters(i=8, o=8, w=8, max_d=2, sp=2)
    router = MetroRouter(params, name="hub")
    attach_scan(router)
    scan = ScanController(router, port=0)

    idcode = scan.read_idcode()
    print("IDCODE: {:#010x} (expected {:#010x})".format(
        idcode, make_idcode(params)))
    print("Configuration chain: {} bits for {} ports".format(
        config_chain_width(params), params.i + params.o))

    print("\nDilation {} (radix {})".format(
        router.config.dilation, router.config.radix))
    scan.set_dilation(1)
    print("After scan write: dilation {} (radix {})".format(
        router.config.dilation, router.config.radix))
    scan.set_dilation(2)

    port_id = router.config.forward_port_id(3)
    scan.set_fast_reclaim(port_id, True)
    print("\nFast reclamation on forward port 3: {}".format(
        router.config.fast_reclaim[port_id]))

    victim = router.config.backward_port_id(5)
    scan.disable_port(victim, drive=True)
    print("Backward port 5 disabled for isolated testing "
          "(off-port drive on); other {} ports still in service".format(
              params.i + params.o - 1))
    scan.enable_port(victim)
    print("...and returned to service.")

    print("\nMultiTAP: killing scan port 0, continuing on port 1")
    router.multitap.kill_port(0)
    backup = ScanController(router, port=1)
    print("Port 1 reads IDCODE: {:#010x}".format(backup.read_idcode()))


if __name__ == "__main__":
    main()
