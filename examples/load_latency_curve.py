"""A small Figure 3: latency versus offered load.

Sweeps the injection rate on the paper's 3-stage, 64-endpoint,
radix-4 network (dilation 2/2/1, 20-byte messages, processors stall
until completion) and prints the latency/load series.  Use the full
benchmark (benchmarks/bench_figure3_load_latency.py) for the
higher-resolution version.

Run:  python examples/load_latency_curve.py
"""

from repro.harness import (
    figure3_sweep,
    format_series,
    results_to_series,
    unloaded_latency,
)


def main():
    base = unloaded_latency(seed=3, samples=8)
    print("Unloaded 20-byte message latency: {:.1f} cycles "
          "(paper reports 28 on its leaner close protocol)\n".format(base))

    results = figure3_sweep(
        rates=(0.002, 0.01, 0.04, 0.16),
        seed=3,
        warmup_cycles=600,
        measure_cycles=2500,
    )
    points = results_to_series(results)
    print(format_series(
        points,
        x_label="label",
        y_labels=["delivered_load", "mean_latency", "p95_latency", "mean_attempts"],
        title="Latency vs. network loading (Figure 3 regime)",
    ))
    print("\nShape check: latency flat at light load, rising toward "
          "saturation — delivered load tops out as the circuit-switched "
          "paths saturate.")


if __name__ == "__main__":
    main()
