"""One-shot reproduction: regenerate every paper result in miniature.

Runs a reduced-size version of every table and figure — small enough
to finish in a few minutes — and prints them in paper order.  The
full-resolution versions live in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only``).

Run:  python examples/reproduce_paper.py
"""

import random
import time

from repro.harness.fault_sweep import fault_degradation_sweep
from repro.harness.load_sweep import figure3_sweep, unloaded_latency
from repro.harness.reporting import (
    ascii_chart,
    format_series,
    format_table,
    results_to_series,
)
from repro.latency_model.contemporaries import table5_contemporaries
from repro.latency_model.implementations import table3_implementations
from repro.network import analysis
from repro.network.multibutterfly import wire
from repro.network.topology import figure1_plan


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    started = time.time()

    banner("Table 3: METRO implementation examples (analytical, exact)")
    print(format_table([impl.row() for impl in table3_implementations()]))

    banner("Table 5: contemporary routing technologies (estimates)")
    print(
        format_table(
            [c.row() for c in table5_contemporaries()],
            columns=["router", "latency", "t_bit",
                     "t_20_32_estimate_ns", "t_20_32_paper_ns"],
            floatfmt="{:.0f}",
        )
    )

    banner("Figure 1: 16x16 multipath network (structure)")
    plan = figure1_plan()
    links = wire(plan, rng=random.Random(1))
    graph = analysis.build_graph(plan, links)
    print("routers per stage:", [plan.routers_in_stage(s) for s in range(3)])
    print("paths endpoint 6 -> 16:", analysis.count_paths(plan, graph, 5, 15))
    print("min route diversity:", analysis.min_route_diversity(plan, graph))
    print("survives any final-stage router loss:",
          analysis.tolerates_any_single_router_loss(plan, graph, 2))

    banner("Figure 3: latency vs. network loading (reduced sweep)")
    base = unloaded_latency(seed=3, samples=6)
    print("unloaded latency: {:.1f} cycles (paper: 28, see EXPERIMENTS.md)".format(base))
    results = figure3_sweep(
        rates=(0.005, 0.02, 0.08, 0.32), seed=3,
        warmup_cycles=400, measure_cycles=1500,
    )
    print(format_series(
        results_to_series(results),
        x_label="label",
        y_labels=["delivered_load", "mean_latency", "p95_latency", "mean_attempts"],
    ))
    print(ascii_chart(
        [(r.delivered_load, r.mean_latency) for r in results],
        title="mean latency vs delivered load",
        x_label="delivered load", y_label="cycles",
    ))

    banner("Section 6.2: robust degradation under faults (reduced)")
    fault_results = fault_degradation_sweep(
        fault_levels=((0, 0), (8, 0), (8, 4)),
        rate=0.02, seed=5, warmup_cycles=400, measure_cycles=1500,
    )
    print(format_series(
        results_to_series(fault_results),
        x_label="label",
        y_labels=["delivered", "mean_latency", "mean_attempts", "abandoned"],
    ))

    print("\nDone in {:.0f}s.  Full-size versions: "
          "pytest benchmarks/ --benchmark-only".format(time.time() - started))


if __name__ == "__main__":
    main()
