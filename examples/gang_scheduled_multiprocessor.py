"""The stateless-network property in a gang-scheduled multiprocessor.

Section 2 of the paper argues a key benefit of circuit switching:

    "No messages ever exist solely in the network.  Consequently, it
    is possible to stop network operation at any point in time without
    losing or duplicating messages.  This feature is useful in
    gang-scheduled, time-shared multiprocessors, allowing context
    switches to occur without incurring overhead to snapshot network
    state."

This example runs two "gangs" (parallel jobs) time-sharing one METRO
network.  The scheduler context-switches *mid-message* by simply
stopping the clock for gang A and resuming it later — no drain, no
snapshot, no message loss.  (In the simulation, each gang's traffic
lives in its own network instance; stopping a gang's clock is just not
stepping its engine, which is precisely the hardware property being
demonstrated: all connection state is in registers that hold their
values.)

Run:  python examples/gang_scheduled_multiprocessor.py
"""

from repro import Message, build_network, figure1_plan
from repro.endpoint.traffic import UniformRandomTraffic

QUANTUM = 150  # cycles per scheduling quantum
QUANTA = 12


def make_gang(name, seed, rate):
    network = build_network(figure1_plan(), seed=seed, fast_reclaim=True)
    traffic = UniformRandomTraffic(16, 4, rate=rate, message_words=10, seed=seed)
    traffic.attach(network)
    return {"name": name, "network": network}


def main():
    gangs = [make_gang("gang-A", seed=21, rate=0.05),
             make_gang("gang-B", seed=22, rate=0.05)]

    print("Round-robin gang scheduling, {} quanta of {} cycles".format(
        QUANTA, QUANTUM))
    for quantum in range(QUANTA):
        gang = gangs[quantum % 2]
        network = gang["network"]
        # Context switch: the descheduled gang's clock simply stops.
        # Messages frozen mid-flight stay in channel/pipe registers.
        in_flight_before = sum(
            ch.in_flight() for ch in network.channels.values()
        )
        network.run(QUANTUM)
        print("  q{:>2} {}: ran {} cycles "
              "(resumed with {} words frozen in the network)".format(
                  quantum, gang["name"], QUANTUM, in_flight_before))

    print()
    for gang in gangs:
        network = gang["network"]
        for endpoint in network.endpoints:
            endpoint.traffic_source = None
        network.run_until_quiet(max_cycles=100000)
        log = network.log
        print("{}: {} messages delivered, {} abandoned, "
              "{} receiver checksum failures".format(
                  gang["name"], len(log.delivered()),
                  len(log.abandoned()), log.receiver_checksum_failures))
        assert log.abandoned() == []
        assert log.receiver_checksum_failures == 0
    print("\nEvery message survived arbitrary mid-flight context switches —")
    print("no network-state snapshotting was ever needed.")


if __name__ == "__main__":
    main()
