"""Quickstart: build the paper's Figure 1 network and send messages.

Builds the 16x16 multipath network of Figure 1 (4x2 dilation-2
routers in two stages, 4x4 dilation-1 routers in the last), sends a
few messages — including the figure's highlighted endpoint-6 to
endpoint-16 pair — and prints what the source-responsible protocol
observed.

Run:  python examples/quickstart.py
"""

from repro import Message, build_network, figure1_plan


def main():
    plan = figure1_plan()
    print("Network: {} endpoints, {} stages, {} routers".format(
        plan.n_endpoints, plan.n_stages, plan.total_routers()))
    print("Stage radices: {}, dilations: {}".format(
        plan.stage_radices(), [s.dilation for s in plan.stages]))

    network = build_network(plan, seed=42)

    # The paper's Figure 1 shows the many paths between endpoint 6 and
    # endpoint 16 (1-based); send across exactly that pair.
    message = network.send(5, Message(dest=15, payload=[0xC, 0xA, 0xF, 0xE]))
    network.run_until_quiet()
    print("\nendpoint 6 -> endpoint 16: {} in {} cycles, {} attempt(s)".format(
        message.outcome, message.latency, message.attempts))

    # Everyone sends at once: contention appears, retries resolve it.
    messages = [
        network.send(src, Message(dest=(src + 7) % 16, payload=[src, src, src]))
        for src in range(16)
    ]
    network.run_until_quiet()
    delivered = sum(1 for m in messages if m.outcome == "delivered")
    retries = sum(m.attempts - 1 for m in messages)
    print("\nAll-at-once: {}/16 delivered, {} total retries".format(
        delivered, retries))
    print("Failure causes seen: {}".format(network.log.attempt_failures or "none"))

    latencies = sorted(m.latency for m in messages)
    print("Latency spread under contention: min={} median={} max={} cycles".format(
        latencies[0], latencies[len(latencies) // 2], latencies[-1]))


if __name__ == "__main__":
    main()
