"""Circuit switching vs. packet switching on one topology.

Section 2 of the paper argues that short-haul networks should circuit
switch.  This example runs the two disciplines — METRO and the
library's buffered wormhole baseline — over the *same* Figure 3
multibutterfly with the same 20-byte traffic and prints the trade:

* METRO: stateless routers, reliable acknowledged delivery, retries
  under contention;
* wormhole: buffered routers, fire-and-forget delivery, contention
  absorbed in FIFOs.

Run:  python examples/switching_comparison.py
"""

from repro.baseline.harness import run_wormhole_point
from repro.harness.load_sweep import run_load_point
from repro.harness.reporting import format_table
from repro.network.topology import figure3_plan


def main():
    plan = figure3_plan()
    rows = []
    for rate in (0.005, 0.04, 0.16):
        metro = run_load_point(
            rate, seed=61, warmup_cycles=500, measure_cycles=2000
        )
        wormhole = run_wormhole_point(
            plan, rate, seed=61, warmup_cycles=500, measure_cycles=2000
        )
        rows.append(
            {
                "rate": rate,
                "METRO load": metro.delivered_load,
                "METRO latency (acked)": metro.mean_latency,
                "METRO retries/msg": metro.mean_attempts - 1,
                "wormhole load": wormhole.delivered_load,
                "wormhole latency (no ack)": wormhole.mean_latency,
            }
        )
    print(format_table(
        rows,
        title="Same network, two switching disciplines (20-byte messages)",
        floatfmt="{:.2f}",
    ))
    print(
        "\nRead with care: METRO's latency includes the acknowledgment\n"
        "round trip and end-to-end verification; the wormhole number is\n"
        "unacknowledged arrival.  The wormhole baseline buys its load\n"
        "curve with per-router FIFOs and credit flow control — the very\n"
        "machinery Section 2 argues short-haul networks can shed."
    )


if __name__ == "__main__":
    main()
