"""METRO as a routing-hub fabric: the paper's second application.

The title says "multiprocessors and routing hubs"; Table 5 compares
against the DEC GIGAswitch, a 22-port FDDI hub.  This example builds a
32-port hub from a METRO multibutterfly: line cards are endpoints,
frames are messages, and the fabric forwards with acknowledged
delivery.  It reports the per-frame forwarding-latency distribution
for a mix of frame sizes and converts the unloaded figure to
nanoseconds with the METROJR-ORBIT clock for a direct line against
Table 5's hub row (GIGAswitch: ~16 us for 20 bytes).

Run:  python examples/routing_hub.py
"""

import random

from repro import Message
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_table
from repro.latency_model.implementations import metrojr_orbit

FRAME_SIZES_BYTES = (20, 64, 256)
PORTS = 64  # line cards


def main():
    hub = figure3_network(seed=99)
    rng = random.Random(100)
    orbit = metrojr_orbit()

    rows = []
    for frame_bytes in FRAME_SIZES_BYTES:
        latencies = []
        for _ in range(12):
            src, dest = rng.randrange(PORTS), rng.randrange(PORTS)
            if src == dest:
                dest = (dest + 1) % PORTS
            payload = [rng.getrandbits(8) for _ in range(frame_bytes)]
            frame = hub.send(src, Message(dest=dest, payload=payload))
            hub.run_until_quiet(max_cycles=50000)
            latencies.append(frame.latency)
        mean_cycles = sum(latencies) / len(latencies)
        rows.append(
            {
                "frame_bytes": frame_bytes,
                "mean_cycles": mean_cycles,
                "at_ORBIT_clock_us": mean_cycles * orbit.t_clk / 1000.0,
            }
        )
    print(format_table(
        rows,
        title="32-port METRO hub: acknowledged frame forwarding",
        floatfmt="{:.2f}",
    ))
    print(
        "\nTable 5 context: the GIGAswitch hub moves a 20-byte frame in "
        "~16 us;\nthis gate-array-clocked METRO fabric does it, "
        "acknowledged, in ~{:.1f} us\n(and the paper's faster "
        "implementations scale that down by 10-30x).".format(
            rows[0]["at_ORBIT_clock_us"]
        )
    )


if __name__ == "__main__":
    main()
