"""Ablation: one vs. two outstanding messages per endpoint.

Figure 3's caption restricts each endpoint to one entering network
port at a time (the parallelism-limited model).  Endpoints have *two*
ports precisely so they could do better; this ablation lifts the
restriction and measures what dual-port injection buys at the same
injection rate — and that fairness across endpoints stays high
(Jain's index) either way.
"""

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_series, results_to_series
from repro.network.builder import build_network
from repro.network.topology import figure3_plan

RATE = 0.08


def _run(max_outstanding, label):
    network = build_network(
        figure3_plan(),
        seed=18,
        fast_reclaim=True,
        endpoint_kwargs={"max_outstanding": max_outstanding},
    )
    traffic = UniformRandomTraffic(
        n_endpoints=64, w=8, rate=RATE, message_words=20, seed=19
    )
    return run_experiment(
        network, traffic, warmup_cycles=800, measure_cycles=3500, label=label
    )


def _experiment():
    return [_run(1, "1 outstanding (Figure 3 rule)"), _run(2, "2 outstanding")]


def test_outstanding_ablation(benchmark, report):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = results_to_series(results)
    for (label, data), result in zip(rows, results):
        data["jain_fairness"] = result.jain_fairness()
    report(
        format_series(
            rows,
            x_label="label",
            y_labels=[
                "delivered",
                "delivered_load",
                "mean_latency",
                "mean_attempts",
                "jain_fairness",
            ],
            title="Ablation: outstanding messages per endpoint (rate {})".format(RATE),
        ),
        name="ablation_outstanding",
    )
    single, dual = results
    # Dual-port injection moves strictly more data...
    assert dual.delivered_load > single.delivered_load * 1.1
    # ...and neither mode starves anyone.
    assert single.jain_fairness() > 0.9
    assert dual.jain_fairness() > 0.9
