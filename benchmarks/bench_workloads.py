"""Application workloads: collective completion and service tails.

Two workload-level figures of merit on top of the fabric benchmarks:

* **Collective completion time** — cycles for a ring all-reduce (and,
  in full mode, recursive doubling and all-to-all) to run its whole
  dependency DAG on the Figure 3 network, plus the wall-clock cost of
  simulating it on the events backend.  The cycle counts are exact,
  deterministic properties of the simulated fabric, so they are
  portable metrics: any drift across commits is a behavior change, not
  noise.

* **Service tail latency** — p99/p999 of the request/response workload
  at a low and a loaded offered rate.  Same portability argument: the
  simulation is seeded and byte-identical across machines.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks to the
Figure 1 network and one algorithm per family; the records still land
in ``benchmarks/results/history/workloads.jsonl`` for
``metro-repro bench-check``.
"""

import os
import time

from _record import metric, write_bench
from repro.harness.workload_sweep import run_collective_point, run_service_point

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

NETWORK = "figure1" if QUICK else "figure3"
ALGORITHMS = ("ring",) if QUICK else ("ring", "recursive-doubling", "all-to-all")
WORDS = 8
SERVICE_RATES = (0.0005,) if QUICK else (0.0005, 0.002)
MEASURE_CYCLES = 3000 if QUICK else 6000


def test_collective_completion(report):
    rows = []
    for algorithm in ALGORITHMS:
        start = time.perf_counter()
        result = run_collective_point(
            seed=0, algorithm=algorithm, words=WORDS, network=NETWORK,
            backend="events",
        )
        elapsed = time.perf_counter() - start
        assert not result.incomplete, algorithm
        rows.append(
            {
                "algorithm": algorithm,
                "ops": result.n_ops,
                "total_cycles": result.total_cycles,
                "max_step_skew": result.max_step_skew(),
                "mean_attempts": result.mean_attempts,
                "wall_seconds": elapsed,
            }
        )
    lines = [
        "Collective completion, {} network (events backend):".format(NETWORK),
        "  {:>18}  {:>6}  {:>12}  {:>9}  {:>9}  {:>8}".format(
            "algorithm", "ops", "total_cycles", "max_skew", "attempts", "wall"
        ),
    ]
    for row in rows:
        lines.append(
            "  {:>18}  {:>6}  {:>12}  {:>9}  {:>9.2f}  {:>6.2f} s".format(
                row["algorithm"],
                row["ops"],
                row["total_cycles"],
                row["max_step_skew"],
                row["mean_attempts"],
                row["wall_seconds"],
            )
        )
    report("\n".join(lines), name="workload_collectives")
    metrics = {}
    for row in rows:
        # Simulated cycle counts are deterministic: drift is a real
        # behavior change.  Wall time is local color only.
        metrics["total_cycles@{}".format(row["algorithm"])] = metric(
            row["total_cycles"], higher_is_better=False, portable=True
        )
        metrics["max_step_skew@{}".format(row["algorithm"])] = metric(
            row["max_step_skew"], higher_is_better=False, portable=True
        )
        metrics["wall_seconds@{}".format(row["algorithm"])] = metric(
            row["wall_seconds"], higher_is_better=False, portable=False
        )
    write_bench(
        "workloads",
        metrics,
        params={
            "network": NETWORK,
            "words": WORDS,
            "algorithms": list(ALGORITHMS),
            "service_rates": list(SERVICE_RATES),
            "measure_cycles": MEASURE_CYCLES,
        },
        rows=rows,
    )


def test_service_tail_latency(report):
    rows = []
    for rate in SERVICE_RATES:
        result = run_service_point(
            rate, seed=0, network="figure1", measure_cycles=MEASURE_CYCLES,
            backend="events",
        )
        assert result.delivered_count > 0
        stats = result.as_dict()
        rows.append(
            {
                "rate": rate,
                "delivered": result.delivered_count,
                "backlog": result.backlog,
                "p50": stats["p50_latency"],
                "p99": stats["p99_latency"],
                "p999": stats["p999_latency"],
            }
        )
    lines = [
        "Service tail latency, figure1 network ({} measured cycles):".format(
            MEASURE_CYCLES
        ),
        "  {:>8}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}".format(
            "rate", "delivered", "backlog", "p50", "p99", "p999"
        ),
    ]
    for row in rows:
        lines.append(
            "  {:>8}  {:>9}  {:>8}  {:>8.0f}  {:>8.0f}  {:>8.0f}".format(
                row["rate"], row["delivered"], row["backlog"],
                row["p50"], row["p99"], row["p999"],
            )
        )
    report("\n".join(lines), name="workload_service")
    metrics = {}
    for row in rows:
        metrics["p99_latency@{}".format(row["rate"])] = metric(
            row["p99"], higher_is_better=False, portable=True
        )
        metrics["p999_latency@{}".format(row["rate"])] = metric(
            row["p999"], higher_is_better=False, portable=True
        )
    write_bench(
        "workloads_service",
        metrics,
        params={
            "rates": list(SERVICE_RATES),
            "measure_cycles": MEASURE_CYCLES,
        },
        rows=rows,
    )
