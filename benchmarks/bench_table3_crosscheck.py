"""Cross-check: Table 3's arithmetic against the cycle simulator.

Table 3's ``t_20,32`` figures are analytical (Table 4).  Here we build
the actual 32-node network those rows describe — three stages of
METROJR parts in dilation-2 mode plus a dilation-1 radix-4 final stage
— inject real 20-byte messages, measure the *one-way arrival* time in
cycles at the receiving endpoint, and compare with the model's
``t_20,32 / t_clk``.

Known accounting differences (why the match is approximate, ~5-10%):

* the simulator's path has ``stages + 1`` wires (the endpoint's attach
  wire is real); the model bills ``stages`` wire transits;
* our protocol appends one end-to-end checksum word the model's
  160-bit message does not include.

Everything else — header length, per-stage pipeline, serialization —
must line up, so a match here validates both the Table 4 equations and
the simulator's timing model against each other.
"""

import random

from repro.endpoint.messages import Message
from repro.harness.reporting import format_table
from repro.latency_model import equations as EQ
from repro.network.builder import build_network
from repro.network.topology import table3_32node_plan


def _measure_one_way_cycles(hw, link_delay, seed, samples=12, two_stage=False):
    network = build_network(
        table3_32node_plan(two_stage=two_stage, hw=hw),
        seed=seed,
        link_delay=link_delay,
    )
    rng = random.Random(seed)
    one_way = []
    for _ in range(samples):
        src = rng.randrange(32)
        dest = rng.randrange(32)
        if dest == src:
            dest = (dest + 1) % 32
        payload = [rng.getrandbits(4) for _ in range(40)]  # 20 bytes at w=4
        message = network.send(src, Message(dest=dest, payload=payload))
        start_arrivals = len(network.log.receiver_arrivals)
        if not network.run_until_quiet(max_cycles=20000):
            raise RuntimeError("failed to drain")
        assert message.outcome == "delivered"
        cycle, _words, ok = network.log.receiver_arrivals[start_arrivals]
        assert ok
        one_way.append(cycle - message.start_cycle)
    return sum(one_way) / len(one_way)


def _experiment():
    rows = []
    cases = [
        # (label, hw, link_delay/vtd, t_clk ns, two_stage, radices)
        ("METROJR-ORBIT (hw=0, vtd=1)", 0, 1, 25, False, (2, 2, 2, 4)),
        ("METROJR hw=1 full custom (vtd=3)", 1, 3, 2, False, (2, 2, 2, 4)),
        ("METRO i=o=8 std cell (2-stage, vtd=1)", 0, 1, 10, True, (4, 8)),
    ]
    for label, hw, vtd_depth, t_clk, two_stage, radices in cases:
        predicted_ns = EQ.t_20_32(
            t_clk,
            t_io=vtd_depth * t_clk - EQ.DEFAULT_T_WIRE,  # pin vtd exactly
            hw=hw,
            w=4,
            stage_radices=radices,
        )
        predicted_cycles = predicted_ns / t_clk
        measured_cycles = _measure_one_way_cycles(
            hw, vtd_depth, seed=51, two_stage=two_stage
        )
        rows.append(
            {
                "configuration": label,
                "model_cycles": predicted_cycles,
                "simulated_cycles": measured_cycles,
                "ratio": measured_cycles / predicted_cycles,
            }
        )
    return rows


def test_table3_crosscheck(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Table 4 arithmetic vs. cycle simulation "
            "(one-way 20-byte delivery, 32-node network)",
            floatfmt="{:.2f}",
        ),
        name="table3_crosscheck",
    )
    for row in rows:
        # Within 10%: the +1 attach wire and +1 checksum word are the
        # only discrepancies, both < 5% of the total here.
        assert row["ratio"] == 1.0 or abs(row["ratio"] - 1.0) < 0.10, row
