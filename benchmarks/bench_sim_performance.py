"""Simulator throughput: how fast the cycle-accurate model runs.

Not a paper figure — an engineering benchmark for the reproduction
itself (the repro band flags cycle simulation speed as the limiting
factor for large networks).  Reports simulated cycles/second for a
loaded Figure 3 network and raw single-router tick rate.
"""

import os

from _record import metric, write_bench
from repro.core import words as W
from repro.core.parameters import RouterParameters
from repro.core.router import MetroRouter
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure3_network
from repro.sim.channel import Channel
from repro.sim.engine import Engine

# REPRO_BENCH_QUICK=1 is the CI smoke mode: enough cycles to exercise
# the measurement path, not enough for stable absolute numbers.
CYCLES = 150 if os.environ.get("REPRO_BENCH_QUICK") else 400


def _loaded_network():
    network = figure3_network(seed=19)
    UniformRandomTraffic(64, 8, rate=0.05, message_words=20, seed=20).attach(network)
    network.run(200)  # warm: connections in flight
    return network


def test_figure3_network_cycle_rate(benchmark, report):
    network = _loaded_network()
    benchmark.pedantic(
        lambda: network.run(CYCLES), rounds=3, iterations=1, warmup_rounds=1
    )
    rate = CYCLES / benchmark.stats["mean"]
    report(
        "Figure 3 network (64 endpoints, 64 routers, 512 wires), loaded:\n"
        "  {:.0f} simulated cycles/second".format(rate),
        name="sim_performance_network",
    )
    write_bench(
        "sim_performance_network",
        # Wall-clock throughput: tracked per machine, never compared
        # across machines (portable=False keeps it out of CI's check).
        {"cycles_per_second": metric(rate, higher_is_better=True)},
        params={"cycles": CYCLES, "rate": 0.05},
    )
    assert rate > 200  # sanity floor


def test_single_router_tick_rate(benchmark, report):
    params = RouterParameters(i=8, o=8, w=8, max_d=2)
    router = MetroRouter(params, name="perf")
    engine = Engine()
    engine.add_component(router)
    sources = []
    for p in range(8):
        channel = Channel(name="f{}".format(p))
        engine.add_channel(channel)
        router.attach_forward(p, channel.b)
        sources.append(channel.a)
    for q in range(8):
        channel = Channel(name="b{}".format(q))
        engine.add_channel(channel)
        router.attach_backward(q, channel.a)
    # Saturate all eight inputs with open connections streaming data.
    for p, end in enumerate(sources):
        end.send(W.data((p % 4) << 6))
    engine.run(2)

    def run_ticks():
        for end in sources:
            end.send(W.data(0x55))
        engine.step()

    benchmark(run_ticks)
    rate = 1.0 / benchmark.stats["mean"]
    report(
        "Single 8x8 router, all ports streaming: {:.0f} router-cycles/second".format(
            rate
        ),
        name="sim_performance_router",
    )
    write_bench(
        "sim_performance_router",
        {"router_cycles_per_second": metric(rate, higher_is_better=True)},
        params={"radix": 8},
    )
    assert rate > 1000


def test_component_time_breakdown(report):
    """Where a simulated cycle's wall time goes, by component class.

    Uses the telemetry profiler rather than pytest-benchmark: the
    point is the per-class share table, not a single number.  The
    shares answer the roadmap question of what to optimize next;
    the unwrapped cycles/second above stays the throughput truth.
    """
    from repro.telemetry import profile_engine

    network = _loaded_network()
    profiled = profile_engine(network.engine, cycles=CYCLES)
    report(
        "Simulator profile, loaded Figure 3 network:\n" + profiled.format(),
        name="sim_performance_profile",
    )
    assert profiled.cycles == CYCLES
    assert {"MetroRouter", "Endpoint", "Channel.advance"} <= set(
        profiled.classes
    )
    # The wrappers must come off afterwards: a second run at full speed.
    assert all(
        "tick" not in vars(component)
        for component in network.engine.components
    )
