"""Backend speedup over the reference engine (events and vector).

The ``events`` backend (:mod:`repro.sim.backends`) parks idle
components and advances only hot channels, so its advantage is largest
when most of the network is quiet.  The ``vector`` backend
(:mod:`repro.sim.vector`) additionally mirrors the wire state into
structure-of-arrays head-kind vectors and replays router/endpoint
steady states inline, attacking the per-cycle constant factor that
dominates under load.  This benchmark measures all three backends on
the identical seeded workload — the loaded Figure 3 network from idle
to saturated injection rates — and reports the speedup curves.  Equal
delivered-message counts are asserted along the way: the speed claim
is only meaningful because the results are byte-identical
(``repro verify --backend-diff`` proves the strong version of that
claim).

The vector backend keeps the Python ``Word``/pipe objects
authoritative (every observer, oracle and snapshot sees reference data
structures), which sets a per-word-hop floor on the saturated rate:
pushing much past ~2x at rate 0.01 would require making the arrays
authoritative, trading away the equivalence-by-construction this
backend is built on.

Run with ``REPRO_BENCH_QUICK=1`` (the CI smoke mode) to shrink the
measurement and assert only that neither fast backend is slower than
the reference; the full run gates per-rate floors for the vector
backend and the >= 3x events target from the roadmap.  Both modes
write a machine-readable ``BENCH_backend_speedup.json`` next to the
text report so the perf trajectory can be tracked across commits.
"""

import gc
import os
import time

from _record import metric, write_bench
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure3_network

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Injection rates swept, lowest (most idle network) first.  0.01 is
#: the loaded/saturated point where Figure 3's knee lives.
RATES = (0.001, 0.002, 0.01)

WARMUP_CYCLES = 200
MEASURE_CYCLES = 300 if QUICK else 600
ROUNDS = 2 if QUICK else 7

#: Full-mode floor on the events speedup at the lowest rate.  Measured
#: best-of-7 on the development machine: ~4.5x at 0.001, ~3x at 0.002,
#: ~1.5x at 0.01.  Quick mode only requires parity (>= 1.0): CI
#: machines are too noisy for a tight ratio gate.
TARGET_SPEEDUP = 1.0 if QUICK else 3.0

#: Full-mode floors on the vector speedup per rate, set below the
#: measured best-of-7 (~6.9x at 0.001, ~3.5x at 0.002, ~1.9x at 0.01)
#: with noise margin.  Quick mode gates parity only.
VECTOR_TARGETS = (
    {rate: 1.0 for rate in RATES}
    if QUICK
    else {0.001: 4.0, 0.002: 2.0, 0.01: 1.4}
)

def _measure(backend, rate):
    """Best-of-rounds seconds for MEASURE_CYCLES, plus delivery stats."""
    network = figure3_network(seed=19, backend=backend)
    UniformRandomTraffic(64, 8, rate=rate, message_words=20, seed=20).attach(
        network
    )
    network.run(WARMUP_CYCLES)
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            start = time.perf_counter()
            network.run(MEASURE_CYCLES)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, network.log.receiver_deliveries, len(network.log.messages)


def test_backend_speedup(report):
    backends = ("reference", "events", "vector")
    rows = []
    for rate in RATES:
        timings = {}
        checks = {}
        for backend in backends:
            seconds, delivered, messages = _measure(backend, rate)
            timings[backend] = seconds
            checks[backend] = (delivered, messages)
        # Same seeds, same cycle count: anything but equality here is
        # an equivalence bug, not measurement noise.
        assert checks["events"] == checks["reference"]
        assert checks["vector"] == checks["reference"]
        ref_s = timings["reference"]
        rows.append(
            {
                "rate": rate,
                "reference_us_per_cycle": 1e6 * ref_s / MEASURE_CYCLES,
                "events_us_per_cycle": 1e6 * timings["events"]
                / MEASURE_CYCLES,
                "vector_us_per_cycle": 1e6 * timings["vector"]
                / MEASURE_CYCLES,
                "events_speedup": ref_s / timings["events"],
                "vector_speedup": ref_s / timings["vector"],
                "delivered": checks["reference"][0],
            }
        )
    lines = [
        "Backend speedup, loaded Figure 3 network "
        "({} measured cycles, best of {}):".format(MEASURE_CYCLES, ROUNDS),
        "  {:>6}  {:>14}  {:>19}  {:>19}  {:>9}".format(
            "rate", "reference", "events", "vector", "delivered"
        ),
    ]
    for row in rows:
        lines.append(
            "  {:>6}  {:>11.1f} us  {:>8.1f} us {:>6.2f}x  "
            "{:>8.1f} us {:>6.2f}x  {:>9}".format(
                row["rate"],
                row["reference_us_per_cycle"],
                row["events_us_per_cycle"],
                row["events_speedup"],
                row["vector_us_per_cycle"],
                row["vector_speedup"],
                row["delivered"],
            )
        )
    report("\n".join(lines), name="backend_speedup")
    metrics = {}
    for row in rows:
        # Speedup ratios are machine-portable, but only the full run
        # measures long enough to make them stable — quick-mode ratios
        # swing ~2x run to run, so they stay out of the cross-machine
        # (portable-only) CI comparison.  Absolute per-cycle times are
        # local color either way.
        metrics["events_speedup@{}".format(row["rate"])] = metric(
            row["events_speedup"], higher_is_better=True, portable=not QUICK
        )
        metrics["vector_speedup@{}".format(row["rate"])] = metric(
            row["vector_speedup"], higher_is_better=True, portable=not QUICK
        )
        metrics["reference_us_per_cycle@{}".format(row["rate"])] = metric(
            row["reference_us_per_cycle"],
            higher_is_better=False,
            portable=False,
        )
    write_bench(
        "backend_speedup",
        metrics,
        params={
            "warmup_cycles": WARMUP_CYCLES,
            "measure_cycles": MEASURE_CYCLES,
            "rounds": ROUNDS,
            "rates": list(RATES),
        },
        rows=rows,
    )
    low = rows[0]
    assert low["events_speedup"] >= TARGET_SPEEDUP, (
        "events backend was only {:.2f}x the reference at rate {} "
        "(target {}x)".format(low["events_speedup"], low["rate"],
                              TARGET_SPEEDUP)
    )
    for row in rows:
        floor = VECTOR_TARGETS[row["rate"]]
        assert row["vector_speedup"] >= floor, (
            "vector backend was only {:.2f}x the reference at rate {} "
            "(target {}x)".format(row["vector_speedup"], row["rate"], floor)
        )


def test_idle_network_compression(report):
    """A network with no traffic source should be near-free to run.

    With nothing attached, every component parks and the engine's
    idle-run compression jumps straight to the deadline — wall time
    must be orders of magnitude below the dense sweep's.
    """
    from repro.sim.backends import EventEngine

    cycles = 50000
    network = figure3_network(seed=19, backend="events")
    assert isinstance(network.engine, EventEngine)
    start = time.perf_counter()
    network.run(cycles)
    elapsed = time.perf_counter() - start
    assert network.engine.cycle == cycles
    assert network.engine.compressed_cycles > 0.9 * cycles
    report(
        "Idle Figure 3 network, events backend: {} cycles in {:.1f} ms "
        "({} compressed away)".format(
            cycles, 1e3 * elapsed, network.engine.compressed_cycles
        ),
        name="backend_speedup_idle",
    )
