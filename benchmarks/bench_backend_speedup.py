"""Event-driven backend speedup over the reference engine.

The ``events`` backend (:mod:`repro.sim.backends`) parks idle
components and advances only hot channels, so its advantage is largest
when most of the network is quiet.  This benchmark measures both
backends on the identical seeded workload — the loaded Figure 3
network at low-to-moderate injection rates — and reports the speedup
curve.  Equal delivered-message counts are asserted along the way:
the speed claim is only meaningful because the results are
byte-identical (``repro verify --backend-diff`` proves the strong
version of that claim).

Run with ``REPRO_BENCH_QUICK=1`` (the CI smoke mode) to shrink the
measurement and assert only that events is not slower than the
reference at low load; the full run asserts the >= 3x target from the
roadmap at the lowest rate.
"""

import gc
import os
import time

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure3_network

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Injection rates swept, lowest (most idle network) first.
RATES = (0.001, 0.002, 0.01)

WARMUP_CYCLES = 200
MEASURE_CYCLES = 300 if QUICK else 600
ROUNDS = 2 if QUICK else 7

#: Full-mode floor on the speedup at the lowest rate.  Measured
#: best-of-7 on the development machine: ~4.5x at 0.001, ~3x at 0.002,
#: ~1.5x at 0.01.  Quick mode only requires parity (>= 1.0): CI
#: machines are too noisy for a tight ratio gate.
TARGET_SPEEDUP = 1.0 if QUICK else 3.0


def _measure(backend, rate):
    """Best-of-rounds seconds for MEASURE_CYCLES, plus delivery stats."""
    network = figure3_network(seed=19, backend=backend)
    UniformRandomTraffic(64, 8, rate=rate, message_words=20, seed=20).attach(
        network
    )
    network.run(WARMUP_CYCLES)
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            start = time.perf_counter()
            network.run(MEASURE_CYCLES)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, network.log.receiver_deliveries, len(network.log.messages)


def test_backend_speedup(report):
    rows = []
    for rate in RATES:
        ref_s, ref_delivered, ref_messages = _measure("reference", rate)
        ev_s, ev_delivered, ev_messages = _measure("events", rate)
        # Same seeds, same cycle count: anything but equality here is
        # an equivalence bug, not measurement noise.
        assert (ev_delivered, ev_messages) == (ref_delivered, ref_messages)
        rows.append(
            {
                "rate": rate,
                "reference_us_per_cycle": 1e6 * ref_s / MEASURE_CYCLES,
                "events_us_per_cycle": 1e6 * ev_s / MEASURE_CYCLES,
                "speedup": ref_s / ev_s,
                "delivered": ref_delivered,
            }
        )
    lines = [
        "Backend speedup, loaded Figure 3 network "
        "({} measured cycles, best of {}):".format(MEASURE_CYCLES, ROUNDS),
        "  {:>6}  {:>14}  {:>11}  {:>8}  {:>9}".format(
            "rate", "reference", "events", "speedup", "delivered"
        ),
    ]
    for row in rows:
        lines.append(
            "  {:>6}  {:>11.1f} us  {:>8.1f} us  {:>7.2f}x  {:>9}".format(
                row["rate"],
                row["reference_us_per_cycle"],
                row["events_us_per_cycle"],
                row["speedup"],
                row["delivered"],
            )
        )
    report("\n".join(lines), name="backend_speedup")
    low = rows[0]
    assert low["speedup"] >= TARGET_SPEEDUP, (
        "events backend was only {:.2f}x the reference at rate {} "
        "(target {}x)".format(low["speedup"], low["rate"], TARGET_SPEEDUP)
    )


def test_idle_network_compression(report):
    """A network with no traffic source should be near-free to run.

    With nothing attached, every component parks and the engine's
    idle-run compression jumps straight to the deadline — wall time
    must be orders of magnitude below the dense sweep's.
    """
    from repro.sim.backends import EventEngine

    cycles = 50000
    network = figure3_network(seed=19, backend="events")
    assert isinstance(network.engine, EventEngine)
    start = time.perf_counter()
    network.run(cycles)
    elapsed = time.perf_counter() - start
    assert network.engine.cycle == cycles
    assert network.engine.compressed_cycles > 0.9 * cycles
    report(
        "Idle Figure 3 network, events backend: {} cycles in {:.1f} ms "
        "({} compressed away)".format(
            cycles, 1e3 * elapsed, network.engine.compressed_cycles
        ),
        name="backend_speedup_idle",
    )
