"""Ablation: fast path reclamation on vs. off (Section 5.1).

With fast reclamation a blocked connection is torn down via the
backward control bit immediately; in detailed mode the blocked router
holds every upstream resource until the source's TURN arrives and the
STATUS/DROP reply crawls back.  The paper pairs "fast block recovery"
with "fast stochastic path search": under load, fast reclamation
should recycle paths sooner — lower latency at the same offered rate.
"""

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_series, results_to_series

RATE = 0.04


def _run(fast_reclaim, label):
    network = figure3_network(seed=7, fast_reclaim=fast_reclaim)
    traffic = UniformRandomTraffic(
        n_endpoints=64, w=8, rate=RATE, message_words=20, seed=8
    )
    return run_experiment(
        network, traffic, warmup_cycles=800, measure_cycles=3500, label=label
    )


def _sweep():
    return [_run(True, "fast-reclaim"), _run(False, "detailed-reply")]


def test_reclamation_ablation(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        format_series(
            results_to_series(results),
            x_label="label",
            y_labels=[
                "delivered",
                "delivered_load",
                "mean_latency",
                "p95_latency",
                "mean_attempts",
            ],
            title="Ablation: path reclamation mode (rate {})".format(RATE),
        ),
        name="ablation_reclamation",
    )
    fast, detailed = results
    # Blocked attempts resolve sooner with fast reclamation: the same
    # offered load completes with lower mean latency.
    assert fast.mean_latency < detailed.mean_latency
    # Both modes deliver everything they accepted.
    assert fast.abandoned_count == detailed.abandoned_count == 0
