"""Table 5: contemporary routing technologies.

Recomputes each t_20,32 estimate from published latency/channel-rate
figures with the paper's recipe and prints it beside the paper's
printed value.
"""

import pytest

from repro.harness.reporting import format_table
from repro.latency_model.contemporaries import table5_contemporaries
from repro.latency_model.implementations import metrojr_orbit


def _build_rows():
    rows = [c.row() for c in table5_contemporaries()]
    orbit = metrojr_orbit()
    rows.append(
        {
            "router": "(this paper) METROJR-ORBIT",
            "latency": "50 ns/stage x 4",
            "t_bit": "25 ns/4 b",
            "t_20_32_paper_ns": (1250, 1250),
            "t_20_32_estimate_ns": (orbit.t_20_32(), orbit.t_20_32()),
            "reference": "Table 3",
        }
    )
    return rows


def test_table5_rows(benchmark, report):
    rows = benchmark(_build_rows)
    report(
        format_table(
            rows,
            columns=[
                "router",
                "latency",
                "t_bit",
                "t_20_32_estimate_ns",
                "t_20_32_paper_ns",
                "reference",
            ],
            title="Table 5: contemporary routing technologies (estimates regenerated)",
            floatfmt="{:.0f}",
        ),
        name="table5",
    )
    for contemporary in table5_contemporaries():
        est = contemporary.estimate_t_20_32()
        paper = contemporary.paper_t_20_32_ns
        assert est[0] == pytest.approx(paper[0], rel=0.15)
        assert est[1] == pytest.approx(paper[1], rel=0.15)
