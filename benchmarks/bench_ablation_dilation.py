"""Ablation: dilated multipath network vs. plain butterfly (Section 5.1).

Figure 3's network uses dilation-2 early stages and dual-ported
endpoints; the baseline everyone compared against in 1994 is the
plain radix-4 butterfly (dilation 1, single-ported endpoints, exactly
one path per source/destination pair).  At the same injection rate
the butterfly has no alternative outputs, so contention turns
directly into blocking and a single dead router isolates endpoints.

(The multipath network spends 2x the wires and 2x the stage-0/1
routers — that hardware is precisely what the paper proposes buying.)
"""

import random

from repro.core.parameters import RouterParameters
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_series, format_table, results_to_series
from repro.network import analysis
from repro.network.builder import build_network
from repro.network.multibutterfly import wire
from repro.network.topology import NetworkPlan, StageSpec, figure3_plan

RATE = 0.04


def butterfly_plan():
    """64 endpoints, three radix-4 dilation-1 stages, one path/pair."""
    params = RouterParameters(i=4, o=4, w=8, max_d=2)
    return NetworkPlan(
        64, 1, 1, [StageSpec(params, 1), StageSpec(params, 1), StageSpec(params, 1)]
    )


def _run(network, label):
    traffic = UniformRandomTraffic(
        n_endpoints=64, w=8, rate=RATE, message_words=20, seed=13
    )
    return run_experiment(
        network, traffic, warmup_cycles=800, measure_cycles=3500, label=label
    )


def _experiment():
    multipath = _run(figure3_network(seed=12), "dilation-2 multipath")
    butterfly = _run(
        build_network(butterfly_plan(), seed=12, fast_reclaim=True),
        "dilation-1 butterfly",
    )

    # Structural comparison: paths per pair and single-fault isolation.
    structure = []
    for name, plan in (("multipath", figure3_plan()), ("butterfly", butterfly_plan())):
        links = wire(plan, rng=random.Random(1))
        graph = analysis.build_graph(plan, links)
        structure.append(
            {
                "network": name,
                "paths 0->63": analysis.count_paths(plan, graph, 0, 63),
                "survives any stage-0 router loss":
                    analysis.tolerates_any_single_router_loss(plan, graph, 0),
            }
        )
    return [multipath, butterfly], structure


def test_dilation_ablation(benchmark, report):
    results, structure = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    text = format_series(
        results_to_series(results),
        x_label="label",
        y_labels=[
            "delivered",
            "delivered_load",
            "mean_latency",
            "mean_attempts",
            "failures_per_message",
        ],
        title="Ablation: dilation (rate {})".format(RATE),
    )
    text += "\n\n" + format_table(structure, title="Structural comparison")
    report(text, name="ablation_dilation")

    multipath, butterfly = results
    # The single-path butterfly blocks far more often per message.
    assert butterfly.blocked_fraction() > multipath.blocked_fraction()
    # Structure: 8 paths vs 1, and only the multipath survives router loss.
    assert structure[0]["paths 0->63"] == 8
    assert structure[1]["paths 0->63"] == 1
    assert structure[0]["survives any stage-0 router loss"]
    assert not structure[1]["survives any stage-0 router loss"]
