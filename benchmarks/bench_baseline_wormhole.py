"""Circuit switching (METRO) vs. packet switching (wormhole baseline).

Section 2's argument, tested head-to-head on the identical topology
(the Figure 3 plan) with identical 20-byte closed-loop traffic:

* METRO pays for contention with blocked attempts and retries but
  holds routers stateless;
* the wormhole baseline absorbs contention in per-router buffers and
  needs no retries, but every router carries FIFO storage and a
  credit-loop — the very complexity METRO's Section 2 argues against
  for short-haul networks.

The bench reports both latency/load series side by side.  Read them
carefully: the two latency columns measure different guarantees.
METRO's latency is *reliable* delivery — submission to acknowledgment
receipt, including per-router status checksums and any retries.  The
wormhole figure is *fire-and-forget* arrival at the sink: no ack, no
end-to-end verification, no retry machinery exists.  Subtracting
METRO's reply path (one reverse network transit plus the close
handshake, ~12 cycles on this network) puts the two one-way figures in
the same regime at light load; under saturation the buffered baseline
sustains more raw load — by spending buffer storage and a credit loop
in every router, and by not promising delivery.
"""

from repro.baseline.harness import run_wormhole_point
from repro.harness.load_sweep import run_load_point
from repro.harness.reporting import format_table
from repro.network.topology import figure3_plan

RATES = (0.005, 0.02, 0.08, 0.32)


def _experiment():
    plan = figure3_plan()
    rows = []
    for rate in RATES:
        metro = run_load_point(
            rate, seed=21, warmup_cycles=700, measure_cycles=3000
        )
        wormhole = run_wormhole_point(
            plan, rate, seed=21, warmup_cycles=700, measure_cycles=3000
        )
        stored = run_wormhole_point(
            plan, rate, seed=21, warmup_cycles=700, measure_cycles=3000,
            store_and_forward=True, buffer_depth=24,
        )
        rows.append(
            {
                "rate": rate,
                "metro_load": metro.delivered_load,
                "metro_latency": metro.mean_latency,
                "wormhole_load": wormhole.delivered_load,
                "wormhole_latency": wormhole.mean_latency,
                "store_fwd_load": stored.delivered_load,
                "store_fwd_latency": stored.mean_latency,
            }
        )
    return rows


def test_metro_vs_wormhole(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Switching disciplines on the Figure 3 topology, 20-byte "
            "messages: METRO (acked circuit) vs wormhole vs "
            "store-and-forward (both fire-and-forget)",
            floatfmt="{:.2f}",
        ),
        name="baseline_wormhole",
    )
    light = rows[0]
    heavy = rows[-1]
    # Same regime at light load: neither cut-through discipline is 2x
    # the other.
    assert light["metro_latency"] < light["wormhole_latency"] * 2
    assert light["wormhole_latency"] < light["metro_latency"] * 2
    # Store-and-forward pays per-hop re-serialization even unloaded —
    # Section 2's argument against long-haul disciplines here.
    assert light["store_fwd_latency"] > light["wormhole_latency"] + 2 * 20
    # Both cut-through disciplines saturate to meaningful load.
    assert heavy["metro_load"] > 0.15
    assert heavy["wormhole_load"] > 0.15
    # Latency rises with load everywhere.
    assert heavy["metro_latency"] > light["metro_latency"]
    assert heavy["wormhole_latency"] > light["wormhole_latency"]
