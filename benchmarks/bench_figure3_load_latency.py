"""Figure 3: effective latency versus network loading.

The paper's only simulation figure: randomly-addressed 20-byte
messages on a 3-stage, 64-endpoint, radix-4 multibutterfly (dilation
2/2/1, dual-ported endpoints using one input at a time, processors
stalling until completion).  This bench sweeps the injection rate and
prints the (delivered load, latency) series; assertions pin the
qualitative shape the paper shows — flat latency at light load rising
steeply toward saturation — and the unloaded latency regime.

The sweep runs through the shared parallel trial runner: set
``REPRO_BENCH_WORKERS`` to fan the rates across worker processes
(results are identical to serial for the same seed) and
``REPRO_BENCH_CACHE`` to a directory to reuse points across bench
invocations.
"""

import math
import os
import time

from _record import metric, write_bench
from repro.harness.load_sweep import figure3_sweep, unloaded_latency
from repro.harness.parallel import TrialRunner
from repro.harness.reporting import format_series, format_table, results_to_series

# REPRO_BENCH_QUICK=1 (the CI smoke mode) shrinks the measured window;
# the qualitative-shape assertions are gated to the full run, but the
# quick sweep is still fully deterministic, so its recorded history
# metrics are exact across machines.
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

RATES = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
WARMUP_CYCLES = 400 if QUICK else 800
MEASURE_CYCLES = 1200 if QUICK else 3500


def _sweep():
    base = unloaded_latency(seed=3, samples=12)
    runner = TrialRunner(
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE"),
    )
    results = figure3_sweep(
        rates=RATES, seed=3, warmup_cycles=WARMUP_CYCLES,
        measure_cycles=MEASURE_CYCLES, runner=runner,
    )
    return base, results


def test_figure3_series(benchmark, report):
    started = time.perf_counter()
    base, results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    sweep_seconds = time.perf_counter() - started
    points = results_to_series(results)
    table = format_series(
        points,
        x_label="label",
        y_labels=[
            "delivered_load",
            "mean_latency",
            "median_latency",
            "p95_latency",
            "mean_attempts",
            "delivered",
        ],
        title=(
            "Figure 3: latency vs. network loading "
            "(unloaded latency {:.1f} cycles; paper: 28 on its leaner "
            "close protocol)".format(base)
        ),
    )
    report(table, name="figure3")

    loads = [r.delivered_load for r in results]
    latencies = [r.mean_latency for r in results]

    # The simulation outputs (loads, latencies) are deterministic
    # functions of the seed — exact across machines, so they are
    # *portable* history metrics: any drift at all is a behavior
    # change, which makes bench-check a cheap cross-commit
    # golden-value guard.  Only the sweep's wall time is machine-local.
    metrics = {
        "unloaded_latency": metric(
            base, higher_is_better=False, portable=True
        ),
        "light_load_latency": metric(
            latencies[0], higher_is_better=False, portable=True
        ),
        "saturated_latency": metric(
            latencies[-1], higher_is_better=False, portable=True
        ),
        "saturated_delivered_load": metric(
            loads[-1], higher_is_better=True, portable=True
        ),
        "sweep_seconds": metric(sweep_seconds, higher_is_better=False),
    }
    write_bench(
        "figure3_load_latency",
        metrics,
        params={
            "rates": list(RATES),
            "warmup_cycles": WARMUP_CYCLES,
            "measure_cycles": MEASURE_CYCLES,
            "seed": 3,
        },
        rows=[
            {
                "rate": rate,
                "delivered_load": r.delivered_load,
                "mean_latency": r.mean_latency,
                "p95_latency": r.latency_percentile(95),
            }
            for rate, r in zip(RATES, results)
        ],
    )

    # Unloaded latency in the paper's regime (tens of cycles; ours pays
    # for explicit wire pipelining + checksum word + close handshake).
    assert 28 <= base <= 55
    assert all(not math.isnan(l) for l in latencies)

    if QUICK:
        # The short window still has to show load responding to rate.
        assert latencies[-1] > latencies[0]
        assert loads[-1] > 0.1
        return

    # Shape: light-load latency near unloaded; heavy-load latency well
    # above it; latency non-decreasing with offered rate overall.
    assert latencies[0] < base * 1.3
    assert latencies[-1] > latencies[0] * 1.25
    assert max(latencies) == latencies[-1] or latencies[-1] > latencies[0]

    # Delivered load saturates: the last doubling of offered rate buys
    # little additional throughput.
    assert loads[-1] < loads[-2] * 1.5
    # And the network really was loaded (well past 10% capacity).
    assert loads[-1] > 0.15
