"""Section 6.2: "performance degrades robustly in the face of faults".

The paper cites its companion studies [2][3] showing the routing
protocol's performance falls off gradually as faults accumulate.
This bench holds offered load fixed on the Figure 3 network and kills
increasing numbers of wires and routers: delivered throughput should
decline gracefully (no cliff, no livelock) while latency and retry
counts rise.

Fault levels are independent trials on the shared parallel runner:
``REPRO_BENCH_WORKERS`` fans them across processes and
``REPRO_BENCH_CACHE`` reuses measured levels across invocations, with
results identical to a serial run either way.
"""

import os

from repro.harness.fault_sweep import fault_degradation_sweep
from repro.harness.parallel import TrialRunner
from repro.harness.reporting import format_series, results_to_series

LEVELS = ((0, 0), (4, 0), (8, 0), (16, 0), (4, 2), (8, 4))


def _sweep():
    runner = TrialRunner(
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE"),
    )
    return fault_degradation_sweep(
        fault_levels=LEVELS,
        rate=0.02,
        seed=5,
        warmup_cycles=800,
        measure_cycles=3500,
        runner=runner,
    )


def test_fault_degradation(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    points = results_to_series(results)
    report(
        format_series(
            points,
            x_label="label",
            y_labels=[
                "delivered",
                "delivered_load",
                "mean_latency",
                "mean_attempts",
                "abandoned",
            ],
            title="Fault degradation at fixed load (Figure 3 network, rate 0.02)",
        ),
        name="fault_degradation",
    )
    healthy = results[0]
    worst = results[-1]
    # Robust degradation: even with 8 dead wires + 4 dead routers the
    # network still delivers the bulk of the healthy throughput...
    assert worst.delivered_count > 0.5 * healthy.delivered_count
    # ...nothing is abandoned (sources always find another path)...
    assert all(r.abandoned_count == 0 for r in results)
    # ...and the cost shows up as retries/latency, not lost messages.
    assert worst.mean_attempts >= healthy.mean_attempts
