"""Ablation: random vs. deterministic output selection (Section 4).

Random selection among equivalent outputs is METRO's load-spreading
and fault-avoidance mechanism.  Two experiments:

1. *Load spreading*: at a fixed offered load, first-free selection
   piles connections onto the low-numbered output of every dilation
   group, so more requests collide and more attempts block.
2. *Fault avoidance*: with a dead wire in the network, random
   selection guarantees a retry eventually takes the other output;
   first-free selection retries the same dead wire forever whenever
   that wire is the group's first choice — messages get abandoned.
"""

from repro.core.crossbar import FIRST_FREE, RANDOM
from repro.endpoint.messages import Message
from repro.endpoint.traffic import UniformRandomTraffic
from repro.faults.injector import FaultInjector
from repro.faults.model import DeadLink
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_series, format_table, results_to_series
from repro.network.builder import build_network
from repro.network.topology import figure1_plan

RATE = 0.04


def _load_run(policy, label):
    network = figure3_network(seed=9, selection_policy=policy)
    traffic = UniformRandomTraffic(
        n_endpoints=64, w=8, rate=RATE, message_words=20, seed=10
    )
    return run_experiment(
        network, traffic, warmup_cycles=800, measure_cycles=3500, label=label
    )


def _single_ported_plan():
    """Figure 1's stage structure with single-ported endpoints, so the
    first-hop router is fixed and only the *allocator's* choice can
    steer around a fault — isolating the mechanism under ablation."""
    from repro.core.parameters import RouterParameters
    from repro.network.topology import NetworkPlan, StageSpec

    params = RouterParameters(i=4, o=4, w=4, max_d=2)
    return NetworkPlan(
        16,
        1,
        1,
        [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
    )


def _fault_run(policy):
    """Dead wire + bounded retries: fraction of messages abandoned."""
    network = build_network(
        _single_ported_plan(),
        seed=11,
        selection_policy=policy,
        randomize_wiring=False,  # same wiring for both policies
        endpoint_kwargs={"max_attempts": 12, "reply_timeout": 120},
    )
    # Kill the wire first-free prefers: a stage-0 direction-0 port 0.
    src_key = ("router", 0, 0, 0, 0)
    dst_key = next(
        dst for (src, dst) in network.channels if src == src_key
    )
    FaultInjector(network).now(DeadLink(src_key=src_key, dst_key=dst_key))
    messages = []
    for round_number in range(4):
        for src in range(16):
            messages.append(
                network.send(src, Message(dest=(src + 5) % 16, payload=[1]))
            )
        network.run_until_quiet(max_cycles=400000)
    abandoned = sum(1 for m in messages if m.outcome == "abandoned")
    return abandoned, len(messages)


def _experiment():
    load_results = [_load_run(RANDOM, "random"), _load_run(FIRST_FREE, "first-free")]
    fault_rows = []
    for policy in (RANDOM, FIRST_FREE):
        abandoned, total = _fault_run(policy)
        fault_rows.append(
            {"policy": policy, "abandoned": abandoned, "messages": total}
        )
    return load_results, fault_rows


def test_selection_ablation(benchmark, report):
    load_results, fault_rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    text = format_series(
        results_to_series(load_results),
        x_label="label",
        y_labels=["delivered", "delivered_load", "mean_latency", "mean_attempts"],
        title="Ablation: output selection policy under load (rate {})".format(RATE),
    )
    text += "\n\n" + format_table(
        fault_rows,
        title="Dead-wire avoidance with 12-attempt budget (deterministic wiring)",
    )
    report(text, name="ablation_selection")

    random_result, first_free_result = load_results
    # Under uniform traffic the policies are close; random must not be
    # meaningfully worse (the decisive difference is fault avoidance).
    assert (
        random_result.blocked_fraction()
        <= first_free_result.blocked_fraction() * 1.1 + 0.05
    )
    # Random selection routes around the dead wire for every message;
    # first-free strands some messages on the dead first choice.
    assert fault_rows[0]["abandoned"] == 0
    assert fault_rows[1]["abandoned"] > 0
