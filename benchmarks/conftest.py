"""Benchmark support: a reporter that survives pytest's capture.

Every benchmark regenerates a table or series from the paper.  The
``report`` fixture prints it to the live terminal (bypassing capture,
so ``pytest benchmarks/ --benchmark-only`` shows the rows) and saves a
copy under ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report(request):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    capture = request.config.pluginmanager.getplugin("capturemanager")

    def _report(text, name=None):
        block = "\n" + text + "\n"
        if capture is not None:
            with capture.global_and_fixture_disabled():
                print(block)
        else:
            print(block)
        filename = name or request.node.name
        path = os.path.join(RESULTS_DIR, filename + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

    return _report
