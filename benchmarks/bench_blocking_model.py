"""Blocking theory vs. simulation across the Figure 3 load range.

Lee's link-occupancy approximation (``repro.latency_model.blocking``)
predicts the probability a connection attempt blocks — and hence the
mean attempts per message — from nothing but the measured delivered
load and the network's stage dilations.  This bench lays the
prediction alongside the simulator's measured retry counts across the
whole Figure 3 sweep.
"""

from repro.harness.load_sweep import run_load_point
from repro.harness.reporting import format_table
from repro.latency_model import blocking as B
from repro.network.topology import figure3_plan

RATES = (0.005, 0.02, 0.08, 0.32)


def _experiment():
    plan = figure3_plan()
    rows = []
    for rate in RATES:
        result = run_load_point(
            rate, seed=23, warmup_cycles=700, measure_cycles=3000
        )
        utilization, p_block, predicted = B.predict_from_result(result, plan)
        rows.append(
            {
                "rate": rate,
                "delivered_load": result.delivered_load,
                "wire_utilization": utilization,
                "lee_p_block": p_block,
                "lee_attempts": predicted,
                "sim_attempts": result.mean_attempts,
            }
        )
    return rows


def test_blocking_model(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Lee's blocking approximation vs. simulated retries "
            "(Figure 3 network)",
            floatfmt="{:.3f}",
        ),
        name="blocking_model",
    )
    # The prediction tracks the measurement's scale and direction.
    for row in rows:
        assert row["lee_attempts"] >= 1.0
        ratio = row["sim_attempts"] / row["lee_attempts"]
        assert 1 / 3 < ratio < 3, row
    predicted = [row["lee_attempts"] for row in rows]
    simulated = [row["sim_attempts"] for row in rows]
    assert predicted == sorted(predicted)
    assert simulated == sorted(simulated)
