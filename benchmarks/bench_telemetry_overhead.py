"""Telemetry overhead: what instrumentation costs, on and off.

The hook sites in routers, endpoints and channels are guarded so that
a simulation without a bound :class:`~repro.telemetry.TelemetryHub`
pays one attribute test per event — the design target is **under 5%
overhead versus the pre-telemetry simulator** (the seed measured ~950
cycles/second on the loaded Figure 3 network; see
``docs/observability.md`` for recorded numbers).  This benchmark pins
that budget: it times the same loaded network with telemetry absent,
metrics-only, and metrics+spans, and asserts the disabled path stays
within the floor the seed already enforced.

The streaming exporter (:mod:`repro.telemetry.stream`) adds *no* hook
sites — an unattached stream is zero code on the hot path, preserving
the disabled-path guarantee by construction — so its cost is measured
separately, with a live stream writing deltas to ``os.devnull``.

Each configuration records its cycles/second to the benchmark history
(``_record.write_bench``), plus one combined record of the relative
overhead percentages, so ``metro-repro bench-check`` can track the
overhead trajectory across commits on a given machine.
"""

import os

from _record import metric, write_bench
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure3_network
from repro.telemetry import TelemetryHub, TelemetryStream

CYCLES = 150 if os.environ.get("REPRO_BENCH_QUICK") else 400

#: Rates observed by the tests that ran so far this session, so the
#: final test can record cross-configuration overhead ratios.
_rates = {}


def _loaded_network(telemetry=None):
    network = figure3_network(seed=19, telemetry=telemetry)
    UniformRandomTraffic(64, 8, rate=0.05, message_words=20, seed=20).attach(network)
    network.run(200)  # warm: connections in flight
    return network


def _rate(benchmark, network):
    benchmark.pedantic(
        lambda: network.run(CYCLES), rounds=3, iterations=1, warmup_rounds=1
    )
    return CYCLES / benchmark.stats["mean"]


def _record_rate(name, rate):
    _rates[name] = rate
    write_bench(
        "telemetry_overhead_{}".format(name),
        {"cycles_per_second": metric(rate, higher_is_better=True)},
        params={"cycles": CYCLES},
    )


def test_disabled_telemetry_overhead(benchmark, report):
    network = _loaded_network()
    rate = _rate(benchmark, network)
    report(
        "Telemetry disabled (null-object fast path):\n"
        "  {:.0f} simulated cycles/second".format(rate),
        name="telemetry_overhead_disabled",
    )
    _record_rate("disabled", rate)
    # Same sanity floor as the seed's bench_sim_performance test: a
    # disabled-path regression past 5% would show up here long before
    # it dragged the rate below the floor.
    assert rate > 200


def test_metrics_only_overhead(benchmark, report):
    network = _loaded_network(TelemetryHub(spans=False))
    rate = _rate(benchmark, network)
    report(
        "Telemetry metrics-only (sweep configuration):\n"
        "  {:.0f} simulated cycles/second".format(rate),
        name="telemetry_overhead_metrics",
    )
    _record_rate("metrics", rate)
    assert rate > 150


def test_stream_overhead(benchmark, report):
    """Metrics + a live run-log stream flushing deltas to /dev/null.

    The stream is an observer, not a hook site: a run without one is
    untouched (the disabled test above is the proof), and a run *with*
    one pays only the periodic delta serialization measured here.
    """
    hub = TelemetryHub(spans=False)
    network = _loaded_network(hub)
    with open(os.devnull, "w") as sink:
        stream = TelemetryStream(sink, flush_every=100, window_cycles=200)
        stream.bind(network)
        rate = _rate(benchmark, network)
        stream.close()
    report(
        "Telemetry metrics + JSONL stream (to /dev/null):\n"
        "  {:.0f} simulated cycles/second, {} deltas".format(
            rate, stream.deltas_written
        ),
        name="telemetry_overhead_stream",
    )
    _record_rate("stream", rate)
    assert stream.deltas_written > 0
    assert rate > 100
    if "metrics" in _rates:
        # Streaming rides the metrics configuration; the delta flush
        # must stay a small tax on it, not a second telemetry system.
        assert rate > 0.6 * _rates["metrics"]


def test_full_telemetry_overhead(benchmark, report):
    network = _loaded_network(TelemetryHub())
    rate = _rate(benchmark, network)
    spans = len(network.telemetry.spans.completed)
    report(
        "Telemetry metrics+spans (tracing configuration):\n"
        "  {:.0f} simulated cycles/second, {} spans recorded".format(
            rate, spans
        ),
        name="telemetry_overhead_full",
    )
    _record_rate("full", rate)
    assert rate > 100
    assert spans > 0
    if {"disabled", "metrics", "stream"} <= set(_rates):
        write_bench(
            "telemetry_overhead",
            {
                # Overhead percentages hover near zero, where ratio
                # thresholds amplify noise — recorded for trajectory,
                # excluded from the cross-machine (portable) check.
                "metrics_overhead_pct": metric(
                    100.0 * (_rates["disabled"] / _rates["metrics"] - 1.0),
                    higher_is_better=False,
                ),
                "stream_overhead_pct": metric(
                    100.0 * (_rates["metrics"] / _rates["stream"] - 1.0),
                    higher_is_better=False,
                ),
                "full_overhead_pct": metric(
                    100.0 * (_rates["disabled"] / rate - 1.0),
                    higher_is_better=False,
                ),
            },
            params={"cycles": CYCLES},
        )
