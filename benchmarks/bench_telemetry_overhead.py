"""Telemetry overhead: what instrumentation costs, on and off.

The hook sites in routers, endpoints and channels are guarded so that
a simulation without a bound :class:`~repro.telemetry.TelemetryHub`
pays one attribute test per event — the design target is **under 5%
overhead versus the pre-telemetry simulator** (the seed measured ~950
cycles/second on the loaded Figure 3 network; see
``docs/observability.md`` for recorded numbers).  This benchmark pins
that budget: it times the same loaded network with telemetry absent,
metrics-only, and metrics+spans, and asserts the disabled path stays
within the floor the seed already enforced.
"""

from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.load_sweep import figure3_network
from repro.telemetry import TelemetryHub

CYCLES = 400


def _loaded_network(telemetry=None):
    network = figure3_network(seed=19, telemetry=telemetry)
    UniformRandomTraffic(64, 8, rate=0.05, message_words=20, seed=20).attach(network)
    network.run(200)  # warm: connections in flight
    return network


def _rate(benchmark, network):
    benchmark.pedantic(
        lambda: network.run(CYCLES), rounds=3, iterations=1, warmup_rounds=1
    )
    return CYCLES / benchmark.stats["mean"]


def test_disabled_telemetry_overhead(benchmark, report):
    network = _loaded_network()
    rate = _rate(benchmark, network)
    report(
        "Telemetry disabled (null-object fast path):\n"
        "  {:.0f} simulated cycles/second".format(rate),
        name="telemetry_overhead_disabled",
    )
    # Same sanity floor as the seed's bench_sim_performance test: a
    # disabled-path regression past 5% would show up here long before
    # it dragged the rate below the floor.
    assert rate > 200


def test_metrics_only_overhead(benchmark, report):
    network = _loaded_network(TelemetryHub(spans=False))
    rate = _rate(benchmark, network)
    report(
        "Telemetry metrics-only (sweep configuration):\n"
        "  {:.0f} simulated cycles/second".format(rate),
        name="telemetry_overhead_metrics",
    )
    assert rate > 150


def test_full_telemetry_overhead(benchmark, report):
    network = _loaded_network(TelemetryHub())
    rate = _rate(benchmark, network)
    spans = len(network.telemetry.spans.completed)
    report(
        "Telemetry metrics+spans (tracing configuration):\n"
        "  {:.0f} simulated cycles/second, {} spans recorded".format(
            rate, spans
        ),
        name="telemetry_overhead_full",
    )
    assert rate > 100
    assert spans > 0
