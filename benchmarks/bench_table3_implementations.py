"""Table 3: METRO implementation examples.

Regenerates every row of the paper's Table 3 from the Table 4
equations and checks the printed values match the paper exactly.
"""

import pytest

from repro.harness.reporting import format_table
from repro.latency_model.implementations import table3_implementations


def _build_rows():
    rows = []
    for impl in table3_implementations():
        row = impl.row()
        row["paper_t_20_32"] = impl.expected_t_20_32
        rows.append(row)
    return rows


def test_table3_rows(benchmark, report):
    rows = benchmark(_build_rows)
    report(
        format_table(
            rows,
            columns=[
                "name",
                "technology",
                "t_clk_ns",
                "t_io_ns",
                "t_stg_ns",
                "t_bit",
                "stages",
                "t_20_32_ns",
                "paper_t_20_32",
            ],
            title="Table 3: METRO implementation examples (regenerated)",
        ),
        name="table3",
    )
    for row in rows:
        assert row["t_20_32_ns"] == pytest.approx(row["paper_t_20_32"]), row["name"]
