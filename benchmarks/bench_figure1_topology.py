"""Figure 1: the 16x16 multipath network, regenerated as data.

Figure 1 is a topology drawing; its content is structural: router
counts per stage, the multiplicity of paths between endpoint pairs
(the bold endpoint-6 to endpoint-16 paths), and the fault-tolerance
properties its caption claims.  This bench rebuilds the network and
reports exactly those quantities.
"""

import random

from repro.harness.reporting import format_table
from repro.network import analysis
from repro.network.multibutterfly import wire
from repro.network.topology import figure1_plan


def _analyze(seed=1):
    plan = figure1_plan()
    links = wire(plan, rng=random.Random(seed))
    graph = analysis.build_graph(plan, links)
    matrix = analysis.path_multiplicity_matrix(plan, graph)
    flat = [value for row in matrix for value in row]
    final = plan.n_stages - 1
    return {
        "plan": plan,
        "graph": graph,
        "bold_pair_paths": analysis.count_paths(plan, graph, 5, 15),
        "min_paths": min(flat),
        "max_paths": max(flat),
        "tolerates_final_stage_loss": analysis.tolerates_any_single_router_loss(
            plan, graph, stage=final
        ),
        "tolerates_stage0_loss": analysis.tolerates_any_single_router_loss(
            plan, graph, stage=0
        ),
    }


def test_figure1_structure(benchmark, report):
    stats = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    plan = stats["plan"]
    rows = [
        {"quantity": "endpoints", "value": plan.n_endpoints},
        {"quantity": "endpoint in/out ports", "value": "2/2"},
        {"quantity": "stages", "value": plan.n_stages},
        {
            "quantity": "routers per stage",
            "value": str([plan.routers_in_stage(s) for s in range(plan.n_stages)]),
        },
        {
            "quantity": "stage (radix, dilation)",
            "value": str([(s.radix, s.dilation) for s in plan.stages]),
        },
        {"quantity": "paths endpoint 6 -> endpoint 16", "value": stats["bold_pair_paths"]},
        {"quantity": "min/max paths over all pairs",
         "value": "{}/{}".format(stats["min_paths"], stats["max_paths"])},
        {"quantity": "survives any single final-stage router loss",
         "value": stats["tolerates_final_stage_loss"]},
        {"quantity": "survives any single stage-0 router loss",
         "value": stats["tolerates_stage0_loss"]},
    ]
    report(
        format_table(rows, title="Figure 1: 16x16 multipath network (structural data)"),
        name="figure1",
    )
    assert stats["bold_pair_paths"] == 8
    assert stats["min_paths"] == stats["max_paths"] == 8
    assert stats["tolerates_final_stage_loss"]
    assert stats["tolerates_stage0_loss"]
