"""Ablation: randomized vs. deterministic multibutterfly wiring.

The paper builds on randomly-wired multibutterflies (Leighton & Maggs
[15][16]): random inter-stage wiring has no bad *structured*
permutation, whereas a deterministic butterfly-style wiring lets an
adversarial permutation drive whole dilation groups through the same
wires.  This bench offers both wirings the same structured permutation
workload (every endpoint hammers a fixed partner) and the same uniform
workload as a control.
"""

from repro.endpoint.traffic import PermutationTraffic, UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_series, results_to_series
from repro.network.builder import build_network
from repro.network.topology import figure3_plan

RATE = 0.04


def _run(randomize, traffic_class, permutation, label):
    network = build_network(
        figure3_plan(), seed=15, fast_reclaim=True, randomize_wiring=randomize
    )
    if traffic_class is PermutationTraffic:
        traffic = PermutationTraffic(
            64, 8, rate=RATE, permutation=permutation, message_words=20, seed=16
        )
    else:
        traffic = UniformRandomTraffic(
            64, 8, rate=RATE, message_words=20, seed=16
        )
    return run_experiment(
        network, traffic, warmup_cycles=800, measure_cycles=3500, label=label
    )


def _experiment():
    return [
        _run(True, PermutationTraffic, "bit-reverse", "random wiring / bit-reverse"),
        _run(False, PermutationTraffic, "bit-reverse", "butterfly wiring / bit-reverse"),
        _run(True, UniformRandomTraffic, None, "random wiring / uniform"),
        _run(False, UniformRandomTraffic, None, "butterfly wiring / uniform"),
    ]


def test_wiring_ablation(benchmark, report):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_series(
            results_to_series(results),
            x_label="label",
            y_labels=[
                "delivered",
                "delivered_load",
                "mean_latency",
                "mean_attempts",
                "failures_per_message",
            ],
            title="Ablation: inter-stage wiring (rate {})".format(RATE),
        ),
        name="ablation_wiring",
    )
    rand_perm, det_perm, rand_uni, det_uni = results
    # All four configurations keep delivering.
    assert all(r.delivered_count > 0 and r.abandoned_count == 0 for r in results)
    # Under the structured permutation, deterministic wiring must not
    # beat random wiring; random wiring's permutation behaviour stays
    # close to its own uniform behaviour (no adversarial blowup).
    assert rand_perm.blocked_fraction() <= det_perm.blocked_fraction() * 1.25 + 0.05
    assert rand_perm.mean_latency <= rand_uni.mean_latency * 1.6
