"""Ablation: connection-setup pipelining, hw = 0 / 1 / 2 (Section 5.1).

Two sides of the trade:

* In *cycles* (simulated): each router consumes ``hw`` words from the
  stream head, so unloaded message latency grows with ``hw`` at a
  fixed clock.
* In *nanoseconds* (analytical, Table 3): decoupling setup from data
  transfer shortens the critical path, so an hw=1 implementation
  clocks faster — the full-custom rows show 2 ns/cycle at hw=1 vs
  5 ns at hw=0, a net win despite the longer header.
"""

import random

from repro.core.parameters import RouterParameters
from repro.endpoint.messages import Message
from repro.harness.reporting import format_table
from repro.latency_model import equations as EQ
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec


def _plan(hw):
    params = RouterParameters(i=4, o=4, w=4, max_d=2, hw=hw)
    return NetworkPlan(
        16,
        2,
        2,
        [StageSpec(params, 2), StageSpec(params, 2), StageSpec(params, 1)],
    )


def _unloaded_cycles(hw, samples=10):
    network = build_network(_plan(hw), seed=14)
    rng = random.Random(15)
    latencies = []
    for _ in range(samples):
        src, dest = rng.randrange(16), rng.randrange(16)
        if src == dest:
            dest = (dest + 1) % 16
        message = network.send(src, Message(dest=dest, payload=[1] * 8))
        network.run_until_quiet(max_cycles=20000)
        latencies.append(message.latency)
    return sum(latencies) / len(latencies)


def _experiment():
    rows = []
    # Analytical side: the paper's full-custom clock for each hw.
    clocks = {0: (5, 3), 1: (2, 3), 2: (2, 3)}
    for hw in (0, 1, 2):
        t_clk, t_io = clocks[hw]
        rows.append(
            {
                "hw": hw,
                "sim_unloaded_cycles": _unloaded_cycles(hw),
                "header_words_per_router": max(hw, 1) if hw else "bits",
                "full_custom_t_clk_ns": t_clk,
                "analytical_t_20_32_ns": EQ.t_20_32(
                    t_clk, t_io, hw=hw, w=4,
                    stage_radices=EQ.RADICES_32_NODE_4_STAGE,
                ),
            }
        )
    return rows


def test_setup_pipelining_ablation(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Ablation: connection-setup pipelining (simulated cycles "
            "at fixed clock vs. analytical ns at achievable clock)",
        ),
        name="ablation_setup_pipelining",
    )
    # At a fixed clock, more header words cost cycles...
    assert (
        rows[0]["sim_unloaded_cycles"]
        < rows[1]["sim_unloaded_cycles"]
        <= rows[2]["sim_unloaded_cycles"]
    )
    # ...but the faster achievable clock makes hw=1 the net ns winner.
    assert rows[1]["analytical_t_20_32_ns"] < rows[0]["analytical_t_20_32_ns"]
