"""Ablation: width cascading, c = 1 / 2 / 4 (Section 5.1).

Analytically, cascading multiplies the channel rate at unchanged
stage latency while replicating the routing header into every slice
(Table 4's ``hbits`` x c): long messages gain nearly the full factor,
short ones less.  In simulation, cascaded slices on a shared random
bus must allocate identically on every request.
"""

from repro.core import words as W
from repro.core.cascade import CascadeGroup
from repro.core.parameters import RouterConfig, RouterParameters
from repro.core.random_source import SharedRandomBus
from repro.core.router import MetroRouter
from repro.harness.reporting import format_table
from repro.latency_model import equations as EQ
from repro.sim.channel import Channel
from repro.sim.engine import Engine


def _analytical_rows():
    rows = []
    for c in (1, 2, 4):
        for message_bytes in (4, 20, 100):
            rows.append(
                {
                    "cascade_c": c,
                    "message_bytes": message_bytes,
                    "hbits": EQ.hbits(4, 0, EQ.RADICES_32_NODE_4_STAGE, c=c),
                    "t_ns (ORBIT clocks)": EQ.t_20_32(
                        25, 10, w=4, c=c, message_bits=message_bytes * 8
                    ),
                }
            )
    return rows


def _consistency_trials(c=4, trials=400):
    params = RouterParameters(i=4, o=4, w=4, max_d=2)
    bus = SharedRandomBus(seed=17)
    engine = Engine()
    members, fwd = [], []
    for index in range(c):
        router = MetroRouter(
            params,
            name="s{}".format(index),
            config=RouterConfig(params, dilation=2),
            random_stream=bus,
        )
        engine.add_component(router)
        ends = []
        for p in range(4):
            channel = Channel(name="f{}:{}".format(index, p))
            engine.add_channel(channel)
            router.attach_forward(p, channel.b)
            ends.append(channel.a)
        for q in range(4):
            channel = Channel(name="b{}:{}".format(index, q))
            engine.add_channel(channel)
            router.attach_backward(q, channel.a)
        members.append(router)
        fwd.append(ends)
    group = CascadeGroup(members)
    engine.add_component(group)

    consistent = 0
    for trial in range(trials):
        header = W.data((trial % 2) << 3)
        for index in range(c):
            fwd[index][0].send(header)
        engine.run(2)
        ports = {m.connected_backward_port(0) for m in members}
        if len(ports) == 1 and None not in ports:
            consistent += 1
        for index in range(c):
            fwd[index][0].send(W.DROP_WORD)
        engine.run(3)
    return consistent, trials, group.mismatches


def _experiment():
    rows = _analytical_rows()
    consistent, trials, mismatches = _consistency_trials()
    return rows, (consistent, trials, mismatches)


def test_cascade_ablation(benchmark, report):
    rows, (consistent, trials, mismatches) = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    text = format_table(
        rows,
        title="Ablation: width cascading (ORBIT clocks, hw=0, w=4/slice)",
    )
    text += (
        "\n\nShared-randomness consistency: {}/{} identical allocations "
        "across a 4-wide cascade ({} wired-AND mismatches)".format(
            consistent, trials, mismatches
        )
    )
    report(text, name="ablation_cascade")

    by_key = {(r["cascade_c"], r["message_bytes"]): r["t_ns (ORBIT clocks)"] for r in rows}
    # Cascading always helps, and helps long messages the most.
    assert by_key[(2, 20)] < by_key[(1, 20)]
    gain_short = by_key[(1, 4)] / by_key[(4, 4)]
    gain_long = by_key[(1, 100)] / by_key[(4, 100)]
    assert gain_long > gain_short
    # Healthy cascades never diverge.
    assert consistent == trials
    assert mismatches == 0
