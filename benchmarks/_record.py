"""Shared benchmark recording: BENCH_*.json + append-only history.

Every ``bench_*`` script calls :func:`write_bench` with its summary
metrics.  One call produces both artifacts:

* ``benchmarks/results/BENCH_<bench>.json`` — the machine-readable
  snapshot of *this* run (rewritten every time; uploaded by CI).
* ``benchmarks/results/history/<bench>.jsonl`` — the same record
  appended to the cross-run history that ``metro-repro bench-check``
  diffs for regressions.  Committed quick-mode records seed the CI
  baseline.

The record format, metric conventions (``higher_is_better``,
``portable``) and the comparator live in
:mod:`repro.harness.benchtrack`; this module only knows where the
benchmarks directory keeps its files.
"""

import json
import os

from repro.harness.benchtrack import append_record, make_record, metric

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HISTORY_DIR = os.path.join(RESULTS_DIR, "history")

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

__all__ = ["HISTORY_DIR", "QUICK", "RESULTS_DIR", "metric", "write_bench"]


def write_bench(bench, metrics, params=None, rows=None, quick=QUICK):
    """Record one benchmark run; returns the record.

    Writes ``BENCH_<bench>.json`` and appends to the bench's history
    file.  ``metrics`` values come from :func:`metric`.
    """
    record = make_record(
        bench,
        metrics,
        params=params,
        rows=rows,
        quick=quick,
        cwd=os.path.dirname(__file__),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = dict(record)
    payload["benchmark"] = bench
    path = os.path.join(RESULTS_DIR, "BENCH_{}.json".format(bench))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    append_record(HISTORY_DIR, record)
    return record
