"""Pin-budget economics: why width cascading exists (Section 5.1).

At a fixed IC pin budget, a designer can spend pins on datapath width
or on ports.  METRO's answer: buy ports (fewer network stages), keep
slices narrow, and recover datapath width by cascading.  This bench
prices the alternatives for the 32-node example machine at several pin
budgets.
"""

from repro.harness.reporting import format_table
from repro.latency_model import cost as C


def _experiment():
    rows = []
    for pins in (120, 150, 220):
        for point in C.cascade_tradeoff_table(pins=pins):
            rows.append(point)
    return rows


def test_pin_economics(benchmark, report):
    rows = benchmark(_experiment)
    display = [
        {
            "pins": r["pins"],
            "w/slice": r["w"],
            "cascade": r["cascade_c"],
            "datapath": r["datapath_bits"],
            "ports/side": r["ports_per_side"],
            "stages": r["stages"],
            "pins_used": r["pins_used"],
            "t_20_32_ns": r["t_20_32_ns"],
        }
        for r in rows
    ]
    report(
        format_table(
            display,
            title="Pin-budget design points, 32-node machine "
            "(0.8u std-cell clocks)",
            floatfmt="{:.0f}",
        ),
        name="pin_economics",
    )
    # At every budget where both exist, the cascaded narrow-slice
    # design beats the single wide chip at equal datapath width.
    for pins in (120, 150, 220):
        at_budget = {(r["w"], r["cascade_c"]): r for r in rows if r["pins"] == pins}
        if (8, 1) in at_budget and (4, 2) in at_budget:
            assert (
                at_budget[(4, 2)]["t_20_32_ns"] <= at_budget[(8, 1)]["t_20_32_ns"]
            )
