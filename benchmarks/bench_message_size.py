"""Message size vs. latency: the short-haul premise, measured.

Section 2's core observation: in tightly-coupled machines "the time
required to inject a message is often large compared to the end-to-end
interconnect latency", which is why dedicating a circuit to the whole
message costs little.  This bench sweeps message size on the Figure 3
network and fits latency = transit + size/bandwidth: the transit
intercept is a handful of cycles while serialization dominates from a
few words up — plus the analytical counterpart across Table 3
implementations via the generalized model.
"""

import random

from repro.endpoint.messages import Message
from repro.harness.load_sweep import figure3_network
from repro.harness.reporting import format_table
from repro.latency_model import general as G
from repro.latency_model.implementations import table3_implementations

SIZES = (1, 4, 10, 20, 40, 80)  # words (bytes at w=8)


def _measure(size_words, seed=55, samples=8):
    network = figure3_network(seed=seed)
    rng = random.Random(seed + size_words)
    latencies = []
    for _ in range(samples):
        src, dest = rng.randrange(64), rng.randrange(64)
        if src == dest:
            dest = (dest + 1) % 64
        payload = [rng.getrandbits(8) for _ in range(size_words)]
        message = network.send(src, Message(dest=dest, payload=payload))
        network.run_until_quiet(max_cycles=20000)
        latencies.append(message.latency)
    return sum(latencies) / len(latencies)


def _experiment():
    rows = []
    orbit = table3_implementations()[0]
    for size in SIZES:
        measured = _measure(size)
        rows.append(
            {
                "message_words": size,
                "simulated_cycles": measured,
                "orbit_analytical_ns": G.t_message(orbit, size // 2 or 1),
            }
        )
    return rows


def test_message_size_sweep(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Latency vs. message size (Figure 3 network, unloaded): "
            "serialization dominates past a few words",
            floatfmt="{:.1f}",
        ),
        name="message_size",
    )
    sizes = [row["message_words"] for row in rows]
    cycles = [row["simulated_cycles"] for row in rows]
    # Latency is affine in size: successive differences match the size
    # deltas (one cycle per word each way... forward only: 1 per word).
    for (s1, c1), (s2, c2) in zip(zip(sizes, cycles), zip(sizes[1:], cycles[1:])):
        slope = (c2 - c1) / (s2 - s1)
        assert 0.8 <= slope <= 1.3, (s1, s2, slope)
    # The transit intercept (size -> 0) is small: the short-haul regime.
    intercept = cycles[0] - sizes[0] * 1.0
    assert intercept < 30
