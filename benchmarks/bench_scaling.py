"""Scaling: latency grows logarithmically with machine size.

Not a numbered figure, but the premise of the paper's Section 2
latency argument: a multistage network reaches N endpoints through
O(log N) routing components, so unloaded latency grows by one
``t_stg`` per added stage while serialization stays constant.  This
bench measures unloaded and lightly-loaded latency for 16-, 64- and
256-endpoint radix-4-style multibutterflies built from the same
router, plus the analytical prediction.
"""

from repro.core.parameters import RouterParameters
from repro.endpoint.traffic import UniformRandomTraffic
from repro.harness.experiment import run_experiment
from repro.harness.load_sweep import unloaded_latency
from repro.harness.reporting import format_table
from repro.network.builder import build_network
from repro.network.topology import NetworkPlan, StageSpec, figure3_plan


def plan_16():
    """Figure 1's structure at w=8 so all sizes share the word size."""
    four = RouterParameters(i=4, o=4, w=8, max_d=2)
    return NetworkPlan(
        16, 2, 2, [StageSpec(four, 2), StageSpec(four, 2), StageSpec(four, 1)]
    )


def plan_256():
    """4 stages of radix-4: 8x8 dilation-2 x3 + 4x4 dilation-1."""
    eight = RouterParameters(i=8, o=8, w=8, max_d=2)
    four = RouterParameters(i=4, o=4, w=8, max_d=2)
    return NetworkPlan(
        256,
        2,
        2,
        [StageSpec(eight, 2), StageSpec(eight, 2), StageSpec(eight, 2),
         StageSpec(four, 1)],
    )


def _measure(plan, name, seed):
    factory = lambda seed=seed: build_network(plan, seed=seed, fast_reclaim=True)
    base = unloaded_latency(seed=seed, samples=8, network_factory=factory)
    network = factory()
    traffic = UniformRandomTraffic(
        n_endpoints=plan.n_endpoints,
        w=plan.stages[0].params.w,
        rate=0.01,
        message_words=20,
        seed=seed + 1,
    )
    loaded = run_experiment(
        network, traffic, warmup_cycles=400, measure_cycles=1500, label=name
    )
    return {
        "network": name,
        "endpoints": plan.n_endpoints,
        "stages": plan.n_stages,
        "routers": plan.total_routers(),
        "unloaded_latency": base,
        "light_load_latency": loaded.mean_latency,
    }


def _experiment():
    return [
        _measure(plan_16(), "16 endpoints (Figure 1 shape, w=8)", seed=31),
        _measure(figure3_plan(), "64 endpoints (Figure 3)", seed=32),
        _measure(plan_256(), "256 endpoints", seed=33),
    ]


def test_scaling(benchmark, report):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Latency scaling with machine size (same router family)",
        ),
        name="scaling",
    )
    small, medium, large = rows
    # One extra stage from 64 -> 256 endpoints: unloaded latency grows
    # by roughly one stage transit (2 cycles here), NOT by 4x.
    delta = large["unloaded_latency"] - medium["unloaded_latency"]
    assert 0 < delta <= 8
    # Log scaling: 16x the endpoints (16 -> 256) costs only one to two
    # stage transits of extra latency.
    assert large["unloaded_latency"] < small["unloaded_latency"] * 1.5